// ModelServer: low-latency online inference over a hot-swappable model.
//
// Composition of the two serve primitives plus the training-side
// ThreadPool:
//
//   Submit(row) ──► AdmissionQueue ──► ready queue ──► dispatch workers
//                   (coalesce into      (sealed          (pool threads in ONE
//                    block_rows          batches)         persistent region)
//                    blocks)                                 │
//   flusher thread ──┘ (deadline seals)                      ▼
//                                            SnapshotHolder::Acquire(tid)
//                                            AccumulateMarginsDense
//                                            MarkDone → tickets/callbacks
//
// Threading model. The pool's parallel regions are collective and cannot
// be nested, so the server does not launch a region per batch — a host
// thread enters RunOnAllThreads ONCE at construction and every pool
// thread becomes a dispatch worker for the server's lifetime. Each
// worker serves whole batches serially; parallelism comes from many
// batches being in flight, which matches the latency goal (a batch never
// pays a fan-out barrier) and keeps per-batch work on one core's cache.
//
// Hot swap. Reload() publishes a new immutable snapshot through the
// epoch-based SnapshotHolder; in-flight batches finish on the snapshot
// they pinned, later batches see the new one. A batch records which
// version served it (served_version), so callers can verify bit-identity
// against the right generation across a swap.
//
// Completion. Ticket waiters are released the moment their batch's
// margins are written (MarkDone), independently across batches.
// Callbacks additionally honor global submission order: batches retire
// through a sequence gate, so callback i never fires before callback j
// when row j was admitted first — the property a streaming client needs
// to pipeline responses without reordering buffers.
//
// Shutdown. Stop admission, force-seal the open batch, drain the ready
// queue (every accepted row is served), then join the flusher and the
// region host. Submit must not race with Shutdown — callers stop their
// traffic first (checked).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/aligned.h"
#include "common/stats.h"
#include "parallel/sync_stats.h"
#include "predict/predictor.h"
#include "serve/admission_queue.h"
#include "serve/snapshot.h"

namespace harp {

class GbdtModel;
class ThreadPool;

struct ServeConfig {
  // Coalescing target: rows per dispatched batch (the Predictor's cache
  // block is the natural unit).
  uint32_t block_rows = Predictor::kRowBlock;
  // Adaptive flush: a non-full batch is dispatched once its oldest row
  // has waited this long.
  int64_t flush_deadline_ns = 200 * 1000;  // 200 microseconds
  // Dispatch workers (= pool threads = snapshot reader slots);
  // 0 = ThreadPool::DefaultThreads().
  int num_threads = 0;
};

// Aggregated server observability snapshot (Stats()).
struct ServeStats {
  int64_t rows_submitted = 0;
  int64_t rows_served = 0;
  int64_t batches_served = 0;
  int64_t full_seals = 0;
  int64_t deadline_seals = 0;
  int64_t forced_seals = 0;
  int64_t reloads = 0;
  int64_t snapshots_retired = 0;
  int64_t snapshots_freed = 0;
  uint64_t model_version = 0;
  double avg_batch_fill = 0.0;  // rows served / batches served

  LatencyRecorder request_ns;  // per row: submit -> margins done
  LatencyRecorder queue_ns;    // per row: submit -> batch dispatched
  LatencyRecorder service_ns;  // per batch: dispatch -> margins done

  SpinCounters admission_lock;

  // Multi-line human-readable report (IngestStats-style).
  std::string Summary() const;
};

class ModelServer {
 public:
  // Snapshots `model` (via its cached FlatSnapshot) and starts the
  // dispatch region + flusher. `model` itself is not retained; Reload()
  // accepts any model whose referenced features fit the server's row
  // width.
  explicit ModelServer(const GbdtModel& model, ServeConfig config = {});
  ~ModelServer();

  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;

  // Width every submitted row must have: the model's feature count (or
  // the flat forest's referenced-feature minimum for cut-less models).
  uint32_t row_width() const { return row_width_; }

  // Enqueues one dense row (`num_features` == row_width(); NaN =
  // missing). Returns a ticket; ticket.Wait() blocks until the row's raw
  // margin is computed. Thread-safe, wait-free against model swaps.
  ServeTicket Submit(const float* row, uint32_t num_features);

  // Callback flavor: `done(margin)` fires after the batch completes,
  // in global submission order across all batches.
  void SubmitWithCallback(const float* row, uint32_t num_features,
                          std::function<void(double)> done);

  // Hot-swaps the served model. In-flight batches keep the snapshot they
  // pinned; the old generation is reclaimed once the last reader drops
  // it. Serialized internally; cheap when the model's flat cache is warm.
  void Reload(const GbdtModel& model);

  // Version currently being handed to new batches (1 = initial model,
  // +1 per Reload).
  uint64_t ModelVersion() const { return holder_->CurrentVersion(); }

  // Force-seals the open batch regardless of deadline (test hooks,
  // latency-sensitive drains).
  void Flush();

  // Stops admission, serves every accepted row, joins all threads.
  // Idempotent; the destructor calls it.
  void Shutdown();

  ServeStats Stats() const;

  const ServeConfig& config() const { return config_; }

 private:
  struct alignas(kCacheLineBytes) WorkerStats {
    mutable std::mutex mutex;
    LatencyRecorder request_ns;
    LatencyRecorder queue_ns;
    LatencyRecorder service_ns;
    int64_t rows = 0;
    int64_t batches = 0;
  };

  void WorkerLoop(int thread_id);
  void ProcessBatch(int thread_id, std::shared_ptr<RequestBatch> batch);
  // Sequence-gated retirement: fires callbacks in batch-seq order.
  void RetireBatch(std::shared_ptr<RequestBatch> batch);
  void FlusherLoop();

  ServeConfig config_;
  uint32_t row_width_ = 0;

  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<SnapshotHolder> holder_;
  std::unique_ptr<AdmissionQueue> queue_;
  std::unique_ptr<WorkerStats[]> worker_stats_;

  std::atomic<bool> stop_{false};
  bool shutdown_done_ = false;
  std::thread flusher_;
  std::thread region_host_;

  // Reload serialization + version allocation.
  std::mutex reload_mutex_;
  uint64_t next_version_ = 2;  // ctor publishes version 1
  std::atomic<int64_t> reloads_{0};

  // Callback ordering gate.
  std::mutex retire_mutex_;
  uint64_t next_retire_seq_ = 0;
  bool retiring_ = false;
  std::map<uint64_t, std::shared_ptr<RequestBatch>> pending_retire_;
};

}  // namespace harp
