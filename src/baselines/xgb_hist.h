// Reimplementation of XGBoost's `tree_method=hist` parallelization strategy
// (the paper's "XGB-Depth" / "XGB-Leaf" comparators).
//
// Characteristics reproduced from Sections II-B and III:
//   - data parallelism: row chunks, one histogram replica per thread,
//     reduced after every leaf;
//   - tree built LEAF BY LEAF even in depthwise mode ("to avoid
//     uncontrolled memory footprint of the model replicas"), so the number
//     of thread synchronizations is proportional to the number of leaves,
//     O(2^D) per tree;
//   - gradients gathered from the global gradient array through the node's
//     row-id list (no MemBuf).
//
// Honoured params: grow_policy (depthwise/leafwise), tree_size,
// row_blk_size, regularization. Block and mode parameters are ignored —
// this trainer *is* the <X, 1, 0, 0> configuration.
#pragma once

#include "common/aligned.h"
#include "core/gbdt.h"
#include "core/tree_builder.h"

namespace harp::baselines {

class XgbHistBuilder final : public TreeBuilderBase {
 public:
  XgbHistBuilder(const BinnedMatrix& matrix, const TrainParams& params,
                 ThreadPool& pool);

  RegTree BuildTree(const std::vector<GradientPair>& gradients,
                    TrainStats* stats) override;

  void UpdateMargins(const RegTree& tree,
                     std::vector<double>* margins) override {
    ScatterLeafValues(tree, partitioner_, pool_, margins);
  }

 private:
  // Builds the histogram of one node with per-thread replicas + reduce
  // (one dynamic parallel-for + one reduce region = 2 barriers per node).
  void BuildNodeHist(int node_id, GHPair* hist);

  // FindSplit for one node, parallel over features.
  SplitInfo FindNodeSplit(const RegTree& tree, int node_id,
                          const GHPair* hist);

  const BinnedMatrix& matrix_;
  const TrainParams& params_;
  ThreadPool& pool_;
  SplitEvaluator evaluator_;
  HistogramPool hists_;
  RowPartitioner partitioner_;
  AlignedVector<GHPair> replicas_;

  int64_t build_ns_ = 0;
  int64_t reduce_ns_ = 0;
  int64_t find_ns_ = 0;
  int64_t apply_ns_ = 0;
  int64_t hist_updates_ = 0;
};

// Facade mirroring GbdtTrainer.
class XgbHistTrainer {
 public:
  explicit XgbHistTrainer(TrainParams params);

  GbdtModel TrainBinned(const BinnedMatrix& matrix,
                        const std::vector<float>& labels,
                        TrainStats* stats = nullptr,
                        const IterCallback& callback = {});

  const TrainParams& params() const { return params_; }

 private:
  TrainParams params_;
};

}  // namespace harp::baselines
