#include "baselines/xgb_approx.h"

#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"

namespace harp::baselines {

XgbApproxBuilder::XgbApproxBuilder(const BinnedMatrix& matrix,
                                   const TrainParams& params,
                                   ThreadPool& pool)
    : matrix_(matrix),
      params_(params.Validate()),
      pool_(pool),
      evaluator_(params) {
  HARP_CHECK(matrix.HasColumnMajor())
      << "XgbApproxBuilder needs the column-major view";
  HARP_CHECK(params.grow_policy == GrowPolicy::kDepthwise)
      << "XGB-Approx is depthwise only";
}

RegTree XgbApproxBuilder::BuildTree(
    const std::vector<GradientPair>& gradients, TrainStats* stats) {
  build_ns_ = find_ns_ = apply_ns_ = 0;
  hist_updates_ = 0;

  const uint32_t num_rows = matrix_.num_rows();
  const uint32_t num_features = matrix_.num_features();
  const size_t total_bins = matrix_.TotalBins();
  const int max_depth = params_.tree_size;
  const GradientPair* grads = gradients.data();

  position_.assign(num_rows, 0);

  RegTree tree;
  {
    GHPair root_sum;
    for (const GradientPair& gp : gradients) root_sum.Add(gp.g, gp.h);
    tree.mutable_node(0).sum = root_sum;
    tree.mutable_node(0).num_rows = num_rows;
  }

  std::vector<int> level_nodes{0};
  for (int depth = 0; depth < max_depth && !level_nodes.empty(); ++depth) {
    const size_t level_size = level_nodes.size();

    // node id -> index within the level (-1 = not in this level).
    std::vector<int32_t> node_index(static_cast<size_t>(tree.num_nodes()),
                                    -1);
    for (size_t i = 0; i < level_size; ++i) {
      node_index[static_cast<size_t>(level_nodes[i])] =
          static_cast<int32_t>(i);
    }

    // --- BuildHist: one pass per feature column covers ALL level nodes
    // (the vertical-plane write region of node_blk_size = 0).
    std::vector<std::vector<GHPair>> hists(level_size);
    for (auto& h : hists) h.assign(total_bins, GHPair{});
    {
      const Stopwatch watch;
      pool_.ParallelForDynamic(
          num_features, 1, [&](int64_t begin, int64_t end, int) {
            for (int64_t f = begin; f < end; ++f) {
              const uint8_t* col = matrix_.ColBins(static_cast<uint32_t>(f));
              const uint32_t offset =
                  matrix_.BinOffset(static_cast<uint32_t>(f));
              for (uint32_t rid = 0; rid < num_rows; ++rid) {
                const int32_t li =
                    node_index[static_cast<size_t>(position_[rid])];
                if (li < 0) continue;
                hists[static_cast<size_t>(li)][offset + col[rid]].Add(
                    grads[rid].g, grads[rid].h);
              }
            }
          });
      build_ns_ += watch.ElapsedNs();
      hist_updates_ += static_cast<int64_t>(num_rows) * num_features;
    }

    // --- FindSplit per level node (parallel over the node x feature grid).
    std::vector<SplitInfo> best(level_size);
    {
      const Stopwatch watch;
      const int lanes = std::max(1, pool_.num_threads());
      const uint32_t fb = std::max(1u, num_features /
                                           static_cast<uint32_t>(2 * lanes));
      std::vector<std::pair<size_t, uint32_t>> grid;  // (node idx, f begin)
      for (size_t i = 0; i < level_size; ++i) {
        for (uint32_t f = 0; f < num_features; f += fb) {
          grid.emplace_back(i, f);
        }
      }
      std::vector<SplitInfo> partial(grid.size());
      pool_.ParallelForDynamic(
          static_cast<int64_t>(grid.size()), 1,
          [&](int64_t begin, int64_t end, int) {
            for (int64_t g = begin; g < end; ++g) {
              const auto [i, f] = grid[static_cast<size_t>(g)];
              partial[static_cast<size_t>(g)] = evaluator_.FindBestSplit(
                  matrix_, hists[i].data(), tree.node(level_nodes[i]).sum, f,
                  std::min(num_features, f + fb));
            }
          });
      for (size_t g = 0; g < grid.size(); ++g) {
        const size_t i = grid[g].first;
        if (partial[g].BetterThan(best[i])) best[i] = partial[g];
      }
      find_ns_ += watch.ElapsedNs();
    }

    // --- ApplySplit: expand the tree, then rewrite positions in one
    // parallel sweep.
    const Stopwatch watch;
    struct AppliedSplit {
      int left;
      int right;
      uint32_t feature;
      uint32_t bin;
      bool default_left;
    };
    // Indexed like node_index; nodes without a valid split keep {-1,...}.
    std::vector<AppliedSplit> applied(level_size,
                                      AppliedSplit{-1, -1, 0, 0, false});
    std::vector<int> next_level;
    for (size_t i = 0; i < level_size; ++i) {
      if (!best[i].IsValid()) continue;
      const int node_id = level_nodes[i];
      const float cut =
          matrix_.cuts().CutFor(best[i].feature, best[i].bin);
      const auto [left, right] = tree.ApplySplit(node_id, best[i], cut);
      applied[i] = AppliedSplit{left, right, best[i].feature, best[i].bin,
                                best[i].default_left};
      next_level.push_back(left);
      next_level.push_back(right);
      if (stats != nullptr) ++stats->nodes_split;
    }

    if (!next_level.empty()) {
      // Per-thread child row counts, merged after the sweep.
      const int threads = pool_.num_threads();
      std::vector<std::vector<uint32_t>> counts(
          static_cast<size_t>(threads),
          std::vector<uint32_t>(static_cast<size_t>(tree.num_nodes()), 0));
      pool_.ParallelFor(num_rows, [&](int64_t begin, int64_t end,
                                      int thread_id) {
        auto& my_counts = counts[static_cast<size_t>(thread_id)];
        for (int64_t r = begin; r < end; ++r) {
          const uint32_t rid = static_cast<uint32_t>(r);
          const int32_t li =
              node_index[static_cast<size_t>(position_[rid])];
          if (li < 0) continue;
          const AppliedSplit& sp = applied[static_cast<size_t>(li)];
          if (sp.left < 0) continue;
          const uint8_t bin = matrix_.RowBins(rid)[sp.feature];
          const bool go_left =
              (bin == 0) ? sp.default_left : (bin <= sp.bin);
          position_[rid] = go_left ? sp.left : sp.right;
          ++my_counts[static_cast<size_t>(position_[rid])];
        }
      });
      for (int child : next_level) {
        uint32_t n = 0;
        for (int t = 0; t < threads; ++t) {
          n += counts[static_cast<size_t>(t)][static_cast<size_t>(child)];
        }
        tree.mutable_node(child).num_rows = n;
      }
    }
    apply_ns_ += watch.ElapsedNs();
    level_nodes = std::move(next_level);
  }

  for (int id = 0; id < tree.num_nodes(); ++id) {
    TreeNode& node = tree.mutable_node(id);
    if (node.IsLeaf()) node.leaf_value = evaluator_.LeafValue(node.sum);
  }

  if (stats != nullptr) {
    stats->build_hist_ns += build_ns_;
    stats->find_split_ns += find_ns_;
    stats->apply_split_ns += apply_ns_;
    stats->hist_updates += hist_updates_;
    stats->leaves += tree.NumLeaves();
    stats->max_tree_depth = std::max(stats->max_tree_depth, tree.MaxDepth());
  }
  return tree;
}

void XgbApproxBuilder::UpdateMargins(const RegTree& tree,
                                     std::vector<double>* margins) {
  pool_.ParallelFor(
      static_cast<int64_t>(margins->size()),
      [&](int64_t begin, int64_t end, int) {
        for (int64_t r = begin; r < end; ++r) {
          (*margins)[static_cast<size_t>(r)] +=
              tree.node(position_[static_cast<size_t>(r)]).leaf_value;
        }
      });
}

XgbApproxTrainer::XgbApproxTrainer(TrainParams params)
    : params_(std::move(params)) {
  params_.Validate();
}

GbdtModel XgbApproxTrainer::TrainBinned(BinnedMatrix& matrix,
                                        const std::vector<float>& labels,
                                        TrainStats* stats,
                                        const IterCallback& callback) {
  const int threads = params_.num_threads > 0 ? params_.num_threads
                                              : ThreadPool::DefaultThreads();
  ThreadPool pool(threads);
  matrix.EnsureColumnMajor(&pool);
  XgbApproxBuilder builder(matrix, params_, pool);
  return RunBoosting(matrix, labels, params_, pool, builder, stats, callback);
}

}  // namespace harp::baselines
