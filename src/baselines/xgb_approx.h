// Reimplementation of the original XGBoost feature-wise strategy
// ("XGB-Approx" in Section IV-A).
//
// Characteristics reproduced:
//   - depthwise growth, whole level at a time;
//   - feature-wise parallelism with node_blk_size = 0 ("all"): one pass
//     per feature column builds that feature's histogram rows for EVERY
//     node of the level simultaneously — the write region is "a vertical
//     plane crossing all tree nodes in GHSum";
//   - a row -> node position array instead of per-node row lists
//     (ApplySplit just rewrites positions, no data movement).
#pragma once

#include "core/gbdt.h"
#include "core/tree_builder.h"

namespace harp::baselines {

class XgbApproxBuilder final : public TreeBuilderBase {
 public:
  XgbApproxBuilder(const BinnedMatrix& matrix, const TrainParams& params,
                   ThreadPool& pool);

  RegTree BuildTree(const std::vector<GradientPair>& gradients,
                    TrainStats* stats) override;

  void UpdateMargins(const RegTree& tree,
                     std::vector<double>* margins) override;

 private:
  const BinnedMatrix& matrix_;
  const TrainParams& params_;
  ThreadPool& pool_;
  SplitEvaluator evaluator_;

  // position_[rid] = current leaf id of the row (persists after BuildTree
  // for UpdateMargins).
  std::vector<int32_t> position_;

  int64_t build_ns_ = 0;
  int64_t find_ns_ = 0;
  int64_t apply_ns_ = 0;
  int64_t hist_updates_ = 0;
};

class XgbApproxTrainer {
 public:
  explicit XgbApproxTrainer(TrainParams params);

  GbdtModel TrainBinned(BinnedMatrix& matrix,
                        const std::vector<float>& labels,
                        TrainStats* stats = nullptr,
                        const IterCallback& callback = {});

  const TrainParams& params() const { return params_; }

 private:
  TrainParams params_;
};

}  // namespace harp::baselines
