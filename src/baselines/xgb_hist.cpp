#include "baselines/xgb_hist.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "common/timer.h"
#include "core/grow_policy.h"

namespace harp::baselines {

XgbHistBuilder::XgbHistBuilder(const BinnedMatrix& matrix,
                               const TrainParams& params, ThreadPool& pool)
    : matrix_(matrix),
      params_(params.Validate()),
      pool_(pool),
      evaluator_(params),
      hists_(matrix.TotalBins()),
      partitioner_(matrix.num_rows(), /*use_membuf=*/false) {
  HARP_CHECK(params.grow_policy != GrowPolicy::kTopK)
      << "XGB-Hist supports depthwise/leafwise only";
}

void XgbHistBuilder::BuildNodeHist(int node_id, GHPair* hist) {
  const size_t total_bins = matrix_.TotalBins();
  const int threads = pool_.num_threads();
  const uint32_t rows = partitioner_.NodeSize(node_id);
  const uint32_t num_features = matrix_.num_features();

  // Per-thread replicas of ONE node's histogram (node_blk = 1).
  replicas_.assign(static_cast<size_t>(threads) * total_bins, GHPair{});

  const int64_t auto_blk =
      std::max<int64_t>(1, static_cast<int64_t>(rows) / std::max(1, threads));
  const int64_t row_blk =
      params_.row_blk_size > 0 ? params_.row_blk_size : auto_blk;

  pool_.ParallelForDynamic(
      rows, row_blk, [&](int64_t begin, int64_t end, int thread_id) {
        GHPair* replica =
            replicas_.data() + static_cast<size_t>(thread_id) * total_bins;
        partitioner_.ForEachRowRange(
            node_id, static_cast<uint32_t>(begin),
            static_cast<uint32_t>(end), [&](uint32_t rid, float g, float h) {
              const uint8_t* row_bins = matrix_.RowBins(rid);
              for (uint32_t f = 0; f < num_features; ++f) {
                replica[matrix_.BinOffset(f) + row_bins[f]].Add(g, h);
              }
            });
      });
  hist_updates_ += static_cast<int64_t>(rows) * num_features;

  const Stopwatch reduce_watch;
  pool_.ParallelFor(static_cast<int64_t>(total_bins),
                    [&](int64_t begin, int64_t end, int) {
                      for (int64_t s = begin; s < end; ++s) {
                        GHPair sum;
                        for (int t = 0; t < threads; ++t) {
                          sum += replicas_[static_cast<size_t>(t) *
                                               total_bins +
                                           static_cast<size_t>(s)];
                        }
                        hist[static_cast<size_t>(s)] = sum;
                      }
                    });
  reduce_ns_ += reduce_watch.ElapsedNs();
}

SplitInfo XgbHistBuilder::FindNodeSplit(const RegTree& tree, int node_id,
                                        const GHPair* hist) {
  const uint32_t num_features = matrix_.num_features();
  const GHPair node_sum = tree.node(node_id).sum;
  const int lanes = std::max(1, pool_.num_threads());
  std::vector<SplitInfo> partial(static_cast<size_t>(lanes));
  pool_.ParallelForDynamic(
      num_features, std::max<int64_t>(1, num_features / (4 * lanes)),
      [&](int64_t begin, int64_t end, int thread_id) {
        const SplitInfo found = evaluator_.FindBestSplit(
            matrix_, hist, node_sum, static_cast<uint32_t>(begin),
            static_cast<uint32_t>(end));
        auto& best = partial[static_cast<size_t>(thread_id)];
        if (found.BetterThan(best)) best = found;
      });
  SplitInfo best;
  for (const SplitInfo& s : partial) {
    if (s.BetterThan(best)) best = s;
  }
  return best;
}

RegTree XgbHistBuilder::BuildTree(const std::vector<GradientPair>& gradients,
                                  TrainStats* stats) {
  build_ns_ = reduce_ns_ = find_ns_ = apply_ns_ = 0;
  hist_updates_ = 0;
  const PartitionStats apply_before = partitioner_.stats();

  const int64_t max_leaves = params_.MaxLeaves();
  const int max_depth = params_.MaxDepth();
  const int max_nodes = static_cast<int>(2 * max_leaves);
  partitioner_.Reset(gradients, max_nodes, &pool_);
  hists_.ReleaseAll();

  RegTree tree;
  tree.mutable_nodes().reserve(static_cast<size_t>(max_nodes));
  tree.mutable_node(0).sum = partitioner_.NodeSum(0, &pool_);
  tree.mutable_node(0).num_rows = partitioner_.num_rows();

  // Processes one node end to end: hist -> split. Leaf-by-leaf barriers.
  auto process_node = [&](int node_id) -> Candidate {
    GHPair* hist = hists_.Acquire(node_id);
    {
      const Stopwatch watch;
      BuildNodeHist(node_id, hist);
      build_ns_ += watch.ElapsedNs();
    }
    const Stopwatch watch;
    const SplitInfo split = FindNodeSplit(tree, node_id, hist);
    find_ns_ += watch.ElapsedNs();
    hists_.Release(node_id);
    return Candidate{node_id, tree.node(node_id).depth, split};
  };

  GrowQueue queue(params_.grow_policy);
  {
    const Candidate root = process_node(0);
    if (root.split.IsValid() && max_leaves > 1 && max_depth > 0) {
      queue.Push(root);
    }
  }

  int64_t leaves = 1;
  while (!queue.Empty() && leaves < max_leaves) {
    // Depthwise pops a whole level, leafwise pops 1 — but either way each
    // node is processed individually (the O(2^D) barrier behaviour).
    const std::vector<Candidate> batch = queue.PopBatch(
        /*k=*/1, static_cast<int>(std::min<int64_t>(max_leaves - leaves,
                                                    1 << 20)));
    if (batch.empty()) break;
    for (const Candidate& cand : batch) {
      if (leaves >= max_leaves) break;
      const Stopwatch watch;
      const float cut =
          matrix_.cuts().CutFor(cand.split.feature, cand.split.bin);
      const auto [left, right] = tree.ApplySplit(cand.node_id, cand.split, cut);
      partitioner_.ApplySplit(cand.node_id, left, right, matrix_,
                              cand.split.feature, cand.split.bin,
                              cand.split.default_left, &pool_);
      tree.mutable_node(left).num_rows = partitioner_.NodeSize(left);
      tree.mutable_node(right).num_rows = partitioner_.NodeSize(right);
      apply_ns_ += watch.ElapsedNs();
      ++leaves;
      if (stats != nullptr) ++stats->nodes_split;

      for (const int child : {left, right}) {
        const Candidate c = process_node(child);
        if (c.split.IsValid() && c.depth < max_depth) queue.Push(c);
      }
    }
  }

  for (int id = 0; id < tree.num_nodes(); ++id) {
    TreeNode& node = tree.mutable_node(id);
    if (node.IsLeaf()) node.leaf_value = evaluator_.LeafValue(node.sum);
  }

  if (stats != nullptr) {
    stats->build_hist_ns += build_ns_;
    stats->reduce_ns += reduce_ns_;
    stats->find_split_ns += find_ns_;
    stats->apply_split_ns += apply_ns_;
    stats->hist_updates += hist_updates_;
    const PartitionStats apply_after = partitioner_.stats();
    stats->apply_splits += apply_after.splits - apply_before.splits;
    stats->apply_batches += apply_after.batches - apply_before.batches;
    stats->apply_barriers += apply_after.barriers - apply_before.barriers;
    stats->apply_bytes_moved +=
        apply_after.bytes_moved - apply_before.bytes_moved;
    stats->apply_allocs += apply_after.grow_events - apply_before.grow_events;
    stats->leaves += leaves;
    stats->max_tree_depth = std::max(stats->max_tree_depth, tree.MaxDepth());
    stats->hist_peak_bytes =
        std::max(stats->hist_peak_bytes, hists_.PeakBytes());
  }
  return tree;
}

XgbHistTrainer::XgbHistTrainer(TrainParams params)
    : params_(std::move(params)) {
  params_.Validate();
}

GbdtModel XgbHistTrainer::TrainBinned(const BinnedMatrix& matrix,
                                      const std::vector<float>& labels,
                                      TrainStats* stats,
                                      const IterCallback& callback) {
  const int threads = params_.num_threads > 0 ? params_.num_threads
                                              : ThreadPool::DefaultThreads();
  ThreadPool pool(threads);
  XgbHistBuilder builder(matrix, params_, pool);
  return RunBoosting(matrix, labels, params_, pool, builder, stats, callback);
}

}  // namespace harp::baselines
