#include "baselines/lightgbm_like.h"

#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"
#include "core/grow_policy.h"

namespace harp::baselines {

LightGbmBuilder::LightGbmBuilder(const BinnedMatrix& matrix,
                                 const TrainParams& params, ThreadPool& pool)
    : matrix_(matrix),
      params_(params.Validate()),
      pool_(pool),
      evaluator_(params),
      hists_(matrix.TotalBins()),
      partitioner_(matrix.num_rows(), /*use_membuf=*/false) {
  HARP_CHECK(matrix.HasColumnMajor())
      << "LightGbmBuilder needs the column-major view; call "
         "EnsureColumnMajor() first";
}

void LightGbmBuilder::BuildNodeHist(
    int node_id, const std::vector<GradientPair>& gradients, GHPair* hist) {
  const uint32_t num_features = matrix_.num_features();
  const auto row_ids = partitioner_.NodeRowIds(node_id);
  const GradientPair* grads = gradients.data();

  // One feature column per task: thread-exclusive write region
  // [BinOffset(f), BinOffset(f+1)), shared read of the node's row ids and
  // a gather from the global gradient array for every feature.
  pool_.ParallelForDynamic(
      num_features, 1, [&](int64_t begin, int64_t end, int) {
        for (int64_t f = begin; f < end; ++f) {
          const uint8_t* col = matrix_.ColBins(static_cast<uint32_t>(f));
          GHPair* feature_hist =
              hist + matrix_.BinOffset(static_cast<uint32_t>(f));
          for (const uint32_t rid : row_ids) {
            feature_hist[col[rid]].Add(grads[rid].g, grads[rid].h);
          }
        }
      });
  hist_updates_ +=
      static_cast<int64_t>(row_ids.size()) * num_features;
}

SplitInfo LightGbmBuilder::FindNodeSplit(const RegTree& tree, int node_id,
                                         const GHPair* hist) {
  const uint32_t num_features = matrix_.num_features();
  const GHPair node_sum = tree.node(node_id).sum;
  const int lanes = std::max(1, pool_.num_threads());
  std::vector<SplitInfo> partial(static_cast<size_t>(lanes));
  pool_.ParallelForDynamic(
      num_features, std::max<int64_t>(1, num_features / (4 * lanes)),
      [&](int64_t begin, int64_t end, int thread_id) {
        const SplitInfo found = evaluator_.FindBestSplit(
            matrix_, hist, node_sum, static_cast<uint32_t>(begin),
            static_cast<uint32_t>(end));
        auto& best = partial[static_cast<size_t>(thread_id)];
        if (found.BetterThan(best)) best = found;
      });
  SplitInfo best;
  for (const SplitInfo& s : partial) {
    if (s.BetterThan(best)) best = s;
  }
  return best;
}

RegTree LightGbmBuilder::BuildTree(const std::vector<GradientPair>& gradients,
                                   TrainStats* stats) {
  build_ns_ = find_ns_ = apply_ns_ = 0;
  hist_updates_ = 0;
  const PartitionStats apply_before = partitioner_.stats();

  const int64_t max_leaves = params_.MaxLeaves();
  const int max_nodes = static_cast<int>(2 * max_leaves);
  partitioner_.Reset(gradients, max_nodes, &pool_);
  hists_.ReleaseAll();

  RegTree tree;
  tree.mutable_nodes().reserve(static_cast<size_t>(max_nodes));
  tree.mutable_node(0).sum = partitioner_.NodeSum(0, &pool_);
  tree.mutable_node(0).num_rows = partitioner_.num_rows();

  auto process_node = [&](int node_id) -> Candidate {
    GHPair* hist = hists_.Acquire(node_id);
    {
      const Stopwatch watch;
      BuildNodeHist(node_id, gradients, hist);
      build_ns_ += watch.ElapsedNs();
    }
    const Stopwatch watch;
    const SplitInfo split = FindNodeSplit(tree, node_id, hist);
    find_ns_ += watch.ElapsedNs();
    hists_.Release(node_id);
    return Candidate{node_id, tree.node(node_id).depth, split};
  };

  GrowQueue queue(GrowPolicy::kLeafwise);
  {
    const Candidate root = process_node(0);
    if (root.split.IsValid() && max_leaves > 1) queue.Push(root);
  }

  int64_t leaves = 1;
  while (!queue.Empty() && leaves < max_leaves) {
    const std::vector<Candidate> batch = queue.PopBatch(1, 1);  // top-1
    if (batch.empty()) break;
    const Candidate& cand = batch[0];

    const Stopwatch watch;
    const float cut =
        matrix_.cuts().CutFor(cand.split.feature, cand.split.bin);
    const auto [left, right] = tree.ApplySplit(cand.node_id, cand.split, cut);
    partitioner_.ApplySplit(cand.node_id, left, right, matrix_,
                            cand.split.feature, cand.split.bin,
                            cand.split.default_left, &pool_);
    tree.mutable_node(left).num_rows = partitioner_.NodeSize(left);
    tree.mutable_node(right).num_rows = partitioner_.NodeSize(right);
    apply_ns_ += watch.ElapsedNs();
    ++leaves;
    if (stats != nullptr) ++stats->nodes_split;

    for (const int child : {left, right}) {
      const Candidate c = process_node(child);
      if (c.split.IsValid()) queue.Push(c);
    }
  }

  for (int id = 0; id < tree.num_nodes(); ++id) {
    TreeNode& node = tree.mutable_node(id);
    if (node.IsLeaf()) node.leaf_value = evaluator_.LeafValue(node.sum);
  }

  if (stats != nullptr) {
    stats->build_hist_ns += build_ns_;
    stats->find_split_ns += find_ns_;
    stats->apply_split_ns += apply_ns_;
    stats->hist_updates += hist_updates_;
    const PartitionStats apply_after = partitioner_.stats();
    stats->apply_splits += apply_after.splits - apply_before.splits;
    stats->apply_batches += apply_after.batches - apply_before.batches;
    stats->apply_barriers += apply_after.barriers - apply_before.barriers;
    stats->apply_bytes_moved +=
        apply_after.bytes_moved - apply_before.bytes_moved;
    stats->apply_allocs += apply_after.grow_events - apply_before.grow_events;
    stats->leaves += leaves;
    stats->max_tree_depth = std::max(stats->max_tree_depth, tree.MaxDepth());
    stats->hist_peak_bytes =
        std::max(stats->hist_peak_bytes, hists_.PeakBytes());
  }
  return tree;
}

LightGbmTrainer::LightGbmTrainer(TrainParams params)
    : params_(std::move(params)) {
  params_.Validate();
}

GbdtModel LightGbmTrainer::TrainBinned(BinnedMatrix& matrix,
                                       const std::vector<float>& labels,
                                       TrainStats* stats,
                                       const IterCallback& callback) {
  const int threads = params_.num_threads > 0 ? params_.num_threads
                                              : ThreadPool::DefaultThreads();
  ThreadPool pool(threads);
  matrix.EnsureColumnMajor(&pool);
  LightGbmBuilder builder(matrix, params_, pool);
  return RunBoosting(matrix, labels, params_, pool, builder, stats, callback);
}

}  // namespace harp::baselines
