// Reimplementation of LightGBM's parallelization strategy (the paper's
// "LightGBM" comparator).
//
// Characteristics reproduced from Sections II-B, III and IV-A:
//   - leafwise growth, strictly one leaf at a time (top-1 of the priority
//     queue), so thread synchronization is per-leaf;
//   - feature-wise model parallelism (<0, 1, 0, 1> in block terms): each
//     thread owns whole feature columns of the current node and writes its
//     own histogram region — no replicas, no reduction;
//   - column-major binned storage, scanned one feature at a time, which
//     re-reads the node's row-id list and gathers the same Gradient rows
//     once PER FEATURE (the redundant-read behaviour Section IV-E's MemBuf
//     addresses).
#pragma once

#include "core/gbdt.h"
#include "core/tree_builder.h"

namespace harp::baselines {

class LightGbmBuilder final : public TreeBuilderBase {
 public:
  // The matrix must have its column-major view materialized
  // (EnsureColumnMajor) before training.
  LightGbmBuilder(const BinnedMatrix& matrix, const TrainParams& params,
                  ThreadPool& pool);

  RegTree BuildTree(const std::vector<GradientPair>& gradients,
                    TrainStats* stats) override;

  void UpdateMargins(const RegTree& tree,
                     std::vector<double>* margins) override {
    ScatterLeafValues(tree, partitioner_, pool_, margins);
  }

 private:
  // Feature-parallel histogram of one node (one dynamic parallel-for over
  // features = one barrier).
  void BuildNodeHist(int node_id, const std::vector<GradientPair>& gradients,
                     GHPair* hist);

  SplitInfo FindNodeSplit(const RegTree& tree, int node_id,
                          const GHPair* hist);

  const BinnedMatrix& matrix_;
  const TrainParams& params_;
  ThreadPool& pool_;
  SplitEvaluator evaluator_;
  HistogramPool hists_;
  RowPartitioner partitioner_;

  int64_t build_ns_ = 0;
  int64_t find_ns_ = 0;
  int64_t apply_ns_ = 0;
  int64_t hist_updates_ = 0;
};

class LightGbmTrainer {
 public:
  explicit LightGbmTrainer(TrainParams params);

  // Materializes the column-major view on first use (counted as one-time
  // initialization, excluded from training time as in Section V-A4).
  GbdtModel TrainBinned(BinnedMatrix& matrix,
                        const std::vector<float>& labels,
                        TrainStats* stats = nullptr,
                        const IterCallback& callback = {});

  const TrainParams& params() const { return params_; }

 private:
  TrainParams params_;
};

}  // namespace harp::baselines
