#include "parallel/work_queue.h"

namespace harp {

void WorkTracker::WaitQuiescent() const {
  int spins = 0;
  while (!Quiescent()) {
    if (++spins >= 64) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

}  // namespace harp
