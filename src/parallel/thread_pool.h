// Persistent instrumented thread pool.
//
// This is the repo's stand-in for the OpenMP runtime the paper profiles.
// Owning the runtime gives us two things the reproduction needs:
//   1. OpenMP semantics made explicit — every parallel region ends in a
//      counted barrier whose per-thread wait time is measured exactly,
//      which is how the Table I / Table VI "barrier overhead" rows are
//      regenerated without VTune.
//   2. A region primitive (RunOnAllThreads) on which the ASYNC builder can
//      run a whole tree with a single barrier at the end, exactly the
//      "schedule all computation of one node as a single task" design of
//      Section IV-D.
//
// Parallel regions must not be nested: a thread inside RunOnAllThreads /
// ParallelFor must not start another region on the same pool (checked).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/sync_stats.h"

namespace harp {

class ThreadPool {
 public:
  // Body of a parallel-for: processes [begin, end) on thread `thread_id`.
  using RangeFn = std::function<void(int64_t begin, int64_t end, int thread_id)>;

  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn(thread_id) on every thread (the caller participates as thread
  // 0); returns after all threads finish. Counts as one parallel region /
  // one barrier. Exceptions thrown by fn are rethrown here (first wins).
  void RunOnAllThreads(const std::function<void(int)>& fn);

  // Splits [0, n) into num_threads contiguous chunks (OpenMP static
  // schedule). Threads with no work still participate in the barrier.
  void ParallelFor(int64_t n, const RangeFn& fn);

  // Work is grabbed in `chunk`-sized pieces via an atomic cursor (OpenMP
  // dynamic schedule). Load-imbalanced loops should prefer this.
  void ParallelForDynamic(int64_t n, int64_t chunk, const RangeFn& fn);

  // Runs a set of heterogeneous tasks with dynamic scheduling.
  void RunTasks(const std::vector<std::function<void()>>& tasks);

  // Aggregated synchronization counters since construction / ResetStats().
  SyncSnapshot Snapshot() const;
  void ResetStats();

  // Folds spin-lock counters (e.g. from the ASYNC builder's queue lock)
  // into this pool's snapshot so one report covers both kinds of waiting.
  void AddSpinCounters(const SpinCounters& counters);

  // Records dynamic task executions attributed to thread `thread_id` while
  // inside a region (used by builders that do their own task accounting).
  void CountTask(int thread_id) { ++counters_[thread_id].tasks; }

  // Reclassifies `ns` of thread `thread_id`'s region time from busy to
  // barrier wait. The ASYNC builder uses this for worker starvation (spins
  // on an empty queue while peers finish): it is wait, not work, and must
  // not inflate the utilization metric.
  void ReclassifyBusyAsWait(int thread_id, int64_t ns) {
    auto& c = counters_[static_cast<size_t>(thread_id)];
    c.busy_ns -= ns;
    c.barrier_wait_ns += ns;
  }

  // Default thread count: HARP_BENCH_THREADS env var if set, otherwise
  // hardware_concurrency (min 1).
  static int DefaultThreads();

 private:
  void WorkerLoop(int worker_id);
  // Executes the current region's function as `thread_id`, recording busy
  // time and the finish timestamp used for barrier-wait accounting.
  void RunRegionBody(int thread_id);

  const int num_threads_;
  std::vector<std::thread> workers_;

  // Region hand-off state (guarded by mutex_ / signalled by wake_cv_).
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_ = 0;        // incremented once per region
  int remaining_ = 0;         // threads yet to finish the current region
  bool shutdown_ = false;
  const std::function<void(int)>* region_fn_ = nullptr;
  bool in_region_ = false;    // nesting guard

  // Per-thread accounting (cache-line padded; index = thread id).
  std::vector<WorkerCounters> counters_;
  std::vector<int64_t> finish_ts_;  // per-thread region finish timestamps
  int64_t region_end_ts_ = 0;       // when the last thread finished

  std::exception_ptr first_exception_;
  std::mutex exception_mutex_;

  int64_t parallel_regions_ = 0;
  SpinCounters extra_spin_;
  mutable std::mutex stats_mutex_;
};

}  // namespace harp
