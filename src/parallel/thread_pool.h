// Persistent instrumented thread pool.
//
// This is the repo's stand-in for the OpenMP runtime the paper profiles.
// Owning the runtime gives us two things the reproduction needs:
//   1. OpenMP semantics made explicit — every parallel region ends in a
//      counted barrier whose per-thread wait time is measured exactly,
//      which is how the Table I / Table VI "barrier overhead" rows are
//      regenerated without VTune.
//   2. A region primitive (RunOnAllThreads) on which the ASYNC builder can
//      run a whole tree with a single barrier at the end, exactly the
//      "schedule all computation of one node as a single task" design of
//      Section IV-D.
//
// Parallel regions must not be nested: a thread inside RunOnAllThreads /
// ParallelFor must not start another region on the same pool (checked).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "parallel/phase_barrier.h"
#include "parallel/sync_stats.h"

namespace harp {

class ThreadPool {
 public:
  // Body of a parallel-for: processes [begin, end) on thread `thread_id`.
  using RangeFn = std::function<void(int64_t begin, int64_t end, int thread_id)>;

  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn(thread_id) on every thread (the caller participates as thread
  // 0); returns after all threads finish. Counts as one parallel region /
  // one barrier. Exceptions thrown by fn are rethrown here (first wins).
  void RunOnAllThreads(const std::function<void(int)>& fn);

  // Splits [0, n) into num_threads contiguous chunks (OpenMP static
  // schedule). Threads with no work still participate in the barrier.
  void ParallelFor(int64_t n, const RangeFn& fn);

  // Work is grabbed in `chunk`-sized pieces via an atomic cursor (OpenMP
  // dynamic schedule). Load-imbalanced loops should prefer this.
  void ParallelForDynamic(int64_t n, int64_t chunk, const RangeFn& fn);

  // Runs a set of heterogeneous tasks with dynamic scheduling.
  void RunTasks(const std::vector<std::function<void()>>& tasks);

  // Aggregated synchronization counters since construction / ResetStats().
  SyncSnapshot Snapshot() const;
  void ResetStats();

  // Folds spin-lock counters (e.g. from the ASYNC builder's queue lock)
  // into this pool's snapshot so one report covers both kinds of waiting.
  void AddSpinCounters(const SpinCounters& counters);

  // Records dynamic task executions attributed to thread `thread_id` while
  // inside a region (used by builders that do their own task accounting).
  void CountTask(int thread_id) { ++counters_[thread_id].tasks; }

  // Records one in-region phase-barrier rendezvous (FusedRegion calls this
  // from the last-arriving thread; reported as SyncSnapshot::phase_barriers
  // next to parallel_regions so the two schedulers' costs are comparable).
  void CountPhaseBarrier() {
    phase_barriers_.fetch_add(1, std::memory_order_relaxed);
  }

  // Keeps every pool thread resident inside ONE parallel region while the
  // caller sequences multiple phases through in-region barriers — the
  // fused-step primitive. One Run replaces a region launch per phase with
  // a PhaseBarrier rendezvous per phase.
  //
  // Collective contract: the body passed to Run executes on every thread,
  // and all threads must invoke the same FusedRegion services (Barrier /
  // ForDynamic / ForStatic) in the same order. At most one ForDynamic may
  // run between consecutive Barriers: the shared chunk cursor is reset at
  // Run entry and by every barrier, never by ForDynamic itself. Nesting
  // rules are unchanged — the body must not start another region on the
  // same pool (RunOnAllThreads' in_region_ check still fires).
  //
  // Exceptions: a throw from the body or a barrier epilogue aborts the
  // region. Peers are released from their spin loops, unwind via an
  // internal tag exception that Run's wrapper swallows, and the first real
  // exception is rethrown from Run on the caller. A FusedRegion that threw
  // must not be reused.
  class FusedRegion {
   public:
    explicit FusedRegion(ThreadPool& pool)
        : pool_(pool), barrier_(pool.num_threads()) {}

    int num_threads() const { return pool_.num_threads(); }

    // Runs body(thread_id) on every pool thread inside one region (counts
    // as exactly one parallel region launch, like RunOnAllThreads).
    void Run(const std::function<void(int)>& body);

    // In-region rendezvous. `epilogue` runs on the LAST arriving thread
    // while every peer is still parked — the serial glue slot between two
    // phases (scan publication, next-phase task staging, ...): it may
    // touch shared state without locks and its writes happen-before
    // everything the released threads do. Waiters' park time is recorded
    // as barrier wait, keeping utilization/overhead metrics honest.
    template <typename Fn>
    void Barrier(int thread_id, Fn&& epilogue) {
      const int64_t start = NowNs();
      bool last = false;
      const bool released = barrier_.Wait([&] {
        last = true;
        if (!failed_.load(std::memory_order_relaxed)) {
          try {
            epilogue();
          } catch (...) {
            RecordException();
          }
        }
        cursor_.store(0, std::memory_order_relaxed);
        pool_.CountPhaseBarrier();
      });
      if (!last && released) {
        pool_.ReclassifyBusyAsWait(thread_id, NowNs() - start);
      }
      if (!released || failed_.load(std::memory_order_acquire)) {
        throw AbortTag{};
      }
    }
    void Barrier(int thread_id) {
      Barrier(thread_id, [] {});
    }

    // Dynamic-schedule loop over [0, n) in `chunk`-sized pieces via the
    // region's shared cursor (the in-region ParallelForDynamic analogue).
    template <typename Fn>
    void ForDynamic(int thread_id, int64_t n, int64_t chunk, Fn&& fn) {
      const int64_t step = std::max<int64_t>(1, chunk);
      for (;;) {
        if (failed_.load(std::memory_order_acquire)) throw AbortTag{};
        const int64_t begin =
            cursor_.fetch_add(step, std::memory_order_relaxed);
        if (begin >= n) return;
        fn(begin, std::min<int64_t>(n, begin + step), thread_id);
        pool_.CountTask(thread_id);
      }
    }

    // Static-schedule loop: the ParallelFor chunking (contiguous per-thread
    // ranges) without a region launch. No cursor use, so it composes with
    // a preceding ForDynamic in the same barrier window if ever needed.
    template <typename Fn>
    void ForStatic(int thread_id, int64_t n, Fn&& fn) {
      if (failed_.load(std::memory_order_acquire)) throw AbortTag{};
      if (n <= 0) return;
      const int64_t chunk =
          (n + static_cast<int64_t>(num_threads()) - 1) / num_threads();
      const int64_t begin = static_cast<int64_t>(thread_id) * chunk;
      const int64_t end = std::min<int64_t>(n, begin + chunk);
      if (begin < end) {
        fn(begin, end, thread_id);
        pool_.CountTask(thread_id);
      }
    }

    // For custom in-region schedulers (e.g. the builder's overlap queue):
    // spin loops must poll failed() so a peer's exception releases them.
    bool failed() const { return failed_.load(std::memory_order_acquire); }
    void ThrowIfFailed() const {
      if (failed()) throw AbortTag{};
    }

   private:
    // Thrown to unwind peers after another thread failed; swallowed by
    // Run's wrapper (the real exception is rethrown from Run).
    struct AbortTag {};

    void RecordException();

    ThreadPool& pool_;
    PhaseBarrier barrier_;
    alignas(64) std::atomic<int64_t> cursor_{0};
    std::atomic<bool> failed_{false};
    std::exception_ptr exception_;
    std::mutex exception_mutex_;
  };

  // Reclassifies `ns` of thread `thread_id`'s region time from busy to
  // barrier wait. The ASYNC builder uses this for worker starvation (spins
  // on an empty queue while peers finish): it is wait, not work, and must
  // not inflate the utilization metric.
  void ReclassifyBusyAsWait(int thread_id, int64_t ns) {
    auto& c = counters_[static_cast<size_t>(thread_id)];
    c.busy_ns -= ns;
    c.barrier_wait_ns += ns;
  }

  // Default thread count: HARP_BENCH_THREADS env var if set, otherwise
  // hardware_concurrency (min 1).
  static int DefaultThreads();

 private:
  void WorkerLoop(int worker_id);
  // Executes the current region's function as `thread_id`, recording busy
  // time and the finish timestamp used for barrier-wait accounting.
  void RunRegionBody(int thread_id);

  const int num_threads_;
  std::vector<std::thread> workers_;

  // Region hand-off state (guarded by mutex_ / signalled by wake_cv_).
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_ = 0;        // incremented once per region
  int remaining_ = 0;         // threads yet to finish the current region
  bool shutdown_ = false;
  const std::function<void(int)>* region_fn_ = nullptr;
  bool in_region_ = false;    // nesting guard

  // Per-thread accounting (cache-line padded; index = thread id).
  std::vector<WorkerCounters> counters_;
  std::vector<int64_t> finish_ts_;  // per-thread region finish timestamps
  int64_t region_end_ts_ = 0;       // when the last thread finished

  std::exception_ptr first_exception_;
  std::mutex exception_mutex_;

  int64_t parallel_regions_ = 0;
  // Relaxed atomic (not under stats_mutex_): bumped from inside regions by
  // the last thread of every FusedRegion barrier.
  std::atomic<int64_t> phase_barriers_{0};
  SpinCounters extra_spin_;
  mutable std::mutex stats_mutex_;
};

}  // namespace harp
