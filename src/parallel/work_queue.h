// Shared priority work queue + termination tracking for ASYNC mode.
//
// Section IV-D: ASYNC "schedules all the computation involved within one
// tree node as a single task" and replaces for-loop barriers with "a
// lightweight spin mutex" on the shared priority queue and tree. This file
// provides exactly those two pieces:
//   - SharedPriorityQueue<T, Compare>: a binary heap guarded by SpinMutex,
//     so K workers can greedily pop the best available candidate ("let K
//     threads select the top candidate as best as they can").
//   - WorkTracker: counts outstanding work items (queued + in flight) so
//     workers know when the tree is finished without a barrier.
#pragma once

#include <atomic>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "parallel/spin_mutex.h"
#include "parallel/sync_stats.h"

namespace harp {

template <typename T, typename Compare = std::less<T>>
class SharedPriorityQueue {
 public:
  explicit SharedPriorityQueue(Compare cmp = Compare())
      : heap_(std::move(cmp)) {}

  void Push(T item) {
    std::lock_guard<SpinMutex> lock(mutex_);
    heap_.push(std::move(item));
  }

  // Pops the best item into *out; returns false when the queue is empty.
  bool TryPop(T* out) {
    std::lock_guard<SpinMutex> lock(mutex_);
    if (heap_.empty()) return false;
    *out = heap_.top();
    heap_.pop();
    return true;
  }

  size_t Size() const {
    std::lock_guard<SpinMutex> lock(mutex_);
    return heap_.size();
  }

  bool Empty() const { return Size() == 0; }

  // Spin-lock contention counters for this queue's mutex.
  SpinCounters LockCounters() const { return mutex_.GetCounters(); }
  void ResetLockCounters() { mutex_.ResetCounters(); }

 private:
  mutable SpinMutex mutex_;
  std::priority_queue<T, std::vector<T>, Compare> heap_;
};

// Counts outstanding work: a unit is outstanding from Add() until Done().
// Producers that are themselves workers (node tasks push child tasks) keep
// the count > 0 while processing, so Quiescent() never fires early.
class WorkTracker {
 public:
  void Add(int64_t n = 1) {
    outstanding_.fetch_add(n, std::memory_order_acq_rel);
  }

  void Done(int64_t n = 1) {
    outstanding_.fetch_sub(n, std::memory_order_acq_rel);
  }

  int64_t Outstanding() const {
    return outstanding_.load(std::memory_order_acquire);
  }

  bool Quiescent() const { return Outstanding() == 0; }

  // Blocks (yielding) until all outstanding work has completed.
  void WaitQuiescent() const;

 private:
  std::atomic<int64_t> outstanding_{0};
};

}  // namespace harp
