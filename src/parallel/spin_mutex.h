// Lightweight instrumented spin mutex.
//
// Section IV-D: "A lightweight spin mutex works well in this scenario and
// gives much less overhead comparing to for-loops barrier wait." The ASYNC
// builder guards its shared priority queue and the growing tree with this
// lock. Contended acquisitions and time spent spinning are counted so the
// Table VI benchmark can report spin overhead next to barrier overhead.
#pragma once

#include <atomic>
#include <thread>

#include "common/timer.h"
#include "parallel/sync_stats.h"

namespace harp {

class SpinMutex {
 public:
  SpinMutex() = default;
  SpinMutex(const SpinMutex&) = delete;
  SpinMutex& operator=(const SpinMutex&) = delete;

  void lock() {
    // Fast path: uncontended acquisition takes no timestamps.
    if (!flag_.exchange(true, std::memory_order_acquire)) {
      counters_.acquires.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const int64_t start = NowNs();
    int spins = 0;
    for (;;) {
      // Test-and-test-and-set: spin on a read to avoid cache-line
      // ping-pong, only attempt the exchange when the lock looks free.
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins >= kSpinsBeforeYield) {
          std::this_thread::yield();
          spins = 0;
        }
      }
      if (!flag_.exchange(true, std::memory_order_acquire)) break;
    }
    counters_.acquires.fetch_add(1, std::memory_order_relaxed);
    counters_.contended.fetch_add(1, std::memory_order_relaxed);
    counters_.wait_ns.fetch_add(NowNs() - start, std::memory_order_relaxed);
  }

  bool try_lock() {
    if (flag_.load(std::memory_order_relaxed)) return false;
    if (flag_.exchange(true, std::memory_order_acquire)) return false;
    counters_.acquires.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

  SpinCounters GetCounters() const {
    SpinCounters c;
    c.acquires = counters_.acquires.load(std::memory_order_relaxed);
    c.contended = counters_.contended.load(std::memory_order_relaxed);
    c.wait_ns = counters_.wait_ns.load(std::memory_order_relaxed);
    return c;
  }

  void ResetCounters() {
    counters_.acquires.store(0, std::memory_order_relaxed);
    counters_.contended.store(0, std::memory_order_relaxed);
    counters_.wait_ns.store(0, std::memory_order_relaxed);
  }

 private:
  // Yield rather than burn the core forever: essential when threads are
  // oversubscribed (more workers than hardware cores).
  static constexpr int kSpinsBeforeYield = 256;

  struct AtomicCounters {
    std::atomic<int64_t> acquires{0};
    std::atomic<int64_t> contended{0};
    std::atomic<int64_t> wait_ns{0};
  };

  std::atomic<bool> flag_{false};
  AtomicCounters counters_;
};

}  // namespace harp
