// Synchronization accounting for the thread runtime.
//
// The paper quantifies parallel inefficiency with VTune's "CPU utilization"
// and "OpenMP barrier overhead" counters (Tables I and VI). Our runtime
// measures the same two quantities directly:
//   utilization      = sum(per-thread busy time) / (wall time x threads)
//   barrier overhead = sum(barrier wait) / sum(busy + barrier wait)
// plus spin-lock contention for the ASYNC mode. Counters are recorded in
// per-thread cache-line-padded slots and aggregated on demand, so the
// accounting itself does not perturb the measurement.
#pragma once

#include <cstdint>
#include <vector>

namespace harp {

// One worker's accumulated times. Padded: adjacent workers' counters must
// not share a cache line.
struct alignas(64) WorkerCounters {
  int64_t busy_ns = 0;          // executing user work
  int64_t barrier_wait_ns = 0;  // finished own share, waiting for peers
  int64_t tasks = 0;            // dynamic chunks / node tasks executed

  void Reset() { busy_ns = 0; barrier_wait_ns = 0; tasks = 0; }
};

// Aggregated view across all workers of a pool (plus spin-lock totals).
struct SyncSnapshot {
  int threads = 1;
  int64_t parallel_regions = 0;  // each region ends in exactly one barrier
  // In-region phase barriers (ThreadPool::FusedRegion rendezvous). These
  // replace region launches under the fused-step scheduler: comparing the
  // two columns is exactly the Table VI region-vs-phase accounting.
  int64_t phase_barriers = 0;
  int64_t busy_ns = 0;
  int64_t barrier_wait_ns = 0;
  int64_t tasks = 0;
  int64_t spin_acquires = 0;
  int64_t spin_contended = 0;
  int64_t spin_wait_ns = 0;

  // Fraction of available CPU time spent doing user work (VTune's
  // "Average CPU Utilization" analogue). wall_ns is the enclosing
  // measurement interval.
  double Utilization(int64_t wall_ns) const;

  // Fraction of active time lost waiting at region-end barriers (VTune's
  // "OpenMP Barrier Overhead" analogue).
  double BarrierOverhead() const;

  // Fraction of active time lost spinning on shared-structure locks
  // (relevant for ASYNC mode).
  double SpinOverhead() const;

  // Difference of two snapshots taken around a measured interval.
  SyncSnapshot operator-(const SyncSnapshot& earlier) const;
};

// Counters for one SpinMutex (or a family sharing one accounting bucket).
struct SpinCounters {
  int64_t acquires = 0;
  int64_t contended = 0;
  int64_t wait_ns = 0;
};

}  // namespace harp
