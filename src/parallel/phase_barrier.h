// Sense-reversing phase barrier for the fused-step execution layer.
//
// A ThreadPool region launch costs a cond-var sleep/wake/teardown cycle per
// phase (Section III: barrier overhead ∝ 2^D per tree). Inside a fused
// region the threads are already resident, so consecutive phases only need
// a lightweight rendezvous: an atomic arrival counter plus a generation
// word the waiters spin on. Reusable immediately — the last arrival resets
// the counter before bumping the generation, and a thread re-entering the
// next Wait is ordered after the release it observed (per-variable
// coherence), so it can never confuse generations.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace harp {

// All `num_threads` participants call Wait; the LAST arrival runs the
// epilogue before releasing the others. The epilogue is the serial glue
// slot between two phases: every peer is parked at the barrier while it
// runs, so it may touch shared state without locks, and its writes
// happen-before anything the released threads do (acq_rel arrival RMWs +
// release generation store / acquire generation loads).
class PhaseBarrier {
 public:
  explicit PhaseBarrier(int num_threads) : num_threads_(num_threads) {}

  PhaseBarrier(const PhaseBarrier&) = delete;
  PhaseBarrier& operator=(const PhaseBarrier&) = delete;

  // Returns true when released by the last arrival, false when Abort() cut
  // the wait short (the caller must unwind; the barrier is dead). The last
  // arrival always runs `epilogue` and returns normally-released status of
  // the abort flag so even the aborting rendezvous stays consistent.
  template <typename Fn>
  bool Wait(Fn&& epilogue) {
    const uint32_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        num_threads_) {
      epilogue();
      arrived_.store(0, std::memory_order_relaxed);
      generation_.store(gen + 1, std::memory_order_release);
      return !abort_.load(std::memory_order_relaxed);
    }
    int spins = 0;
    while (generation_.load(std::memory_order_acquire) == gen) {
      if (abort_.load(std::memory_order_acquire)) return false;
      if (++spins >= kSpinsBeforeYield) {
        spins = 0;
        std::this_thread::yield();
      }
    }
    return true;
  }

  bool Wait() {
    return Wait([] {});
  }

  // Releases every current and future waiter with a false return. Used for
  // exception unwinding: a thread that failed inside a phase can never
  // reach the next Wait, so peers must not park there forever.
  void Abort() { abort_.store(true, std::memory_order_release); }
  bool aborted() const { return abort_.load(std::memory_order_acquire); }

 private:
  static constexpr int kSpinsBeforeYield = 1 << 12;

  const int num_threads_;
  std::atomic<int> arrived_{0};
  std::atomic<uint32_t> generation_{0};
  std::atomic<bool> abort_{false};
};

}  // namespace harp
