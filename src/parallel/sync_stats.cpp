#include "parallel/sync_stats.h"

namespace harp {

double SyncSnapshot::Utilization(int64_t wall_ns) const {
  if (wall_ns <= 0 || threads <= 0) return 0.0;
  return static_cast<double>(busy_ns) /
         (static_cast<double>(wall_ns) * static_cast<double>(threads));
}

double SyncSnapshot::BarrierOverhead() const {
  const int64_t active = busy_ns + barrier_wait_ns;
  if (active <= 0) return 0.0;
  return static_cast<double>(barrier_wait_ns) / static_cast<double>(active);
}

double SyncSnapshot::SpinOverhead() const {
  const int64_t active = busy_ns + spin_wait_ns;
  if (active <= 0) return 0.0;
  return static_cast<double>(spin_wait_ns) / static_cast<double>(active);
}

SyncSnapshot SyncSnapshot::operator-(const SyncSnapshot& earlier) const {
  SyncSnapshot d = *this;
  d.parallel_regions -= earlier.parallel_regions;
  d.phase_barriers -= earlier.phase_barriers;
  d.busy_ns -= earlier.busy_ns;
  d.barrier_wait_ns -= earlier.barrier_wait_ns;
  d.tasks -= earlier.tasks;
  d.spin_acquires -= earlier.spin_acquires;
  d.spin_contended -= earlier.spin_contended;
  d.spin_wait_ns -= earlier.spin_wait_ns;
  return d;
}

}  // namespace harp
