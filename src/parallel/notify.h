// Sleep/wake notification primitives for the serving layer.
//
// The training-side pool keeps every thread busy inside parallel regions,
// so it never needed a way to *sleep until told otherwise*. Serving does:
// the admission flusher sleeps until a batch deadline (or an earlier
// submit re-arms it), and dispatch workers sleep when the ready queue is
// empty. Both are condvar waits wrapped so callers deal in the repo's
// int64-nanosecond time base instead of chrono types.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace harp {

// Auto-reset event: Set() releases at most one pending (or the next) Wait.
// A Set() with no waiter is remembered once, so a signal between a
// waiter's predicate check and its park is never lost — the classic
// flusher race (submit opens a batch while the flusher is deciding how
// long to sleep) is handled by re-arming instead of by spinning.
class AutoResetEvent {
 public:
  void Set() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      signaled_ = true;
    }
    cv_.notify_one();
  }

  // Blocks until Set() (consumes the signal).
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return signaled_; });
    signaled_ = false;
  }

  // Blocks until Set() or `timeout_ns` elapses; returns true when the
  // signal (not the timeout) ended the wait. Non-positive timeouts only
  // poll the pending flag.
  bool WaitFor(int64_t timeout_ns) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (timeout_ns <= 0) {
      const bool was = signaled_;
      signaled_ = false;
      return was;
    }
    const bool ok = cv_.wait_for(lock, std::chrono::nanoseconds(timeout_ns),
                                 [&] { return signaled_; });
    signaled_ = false;
    return ok;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool signaled_ = false;
};

}  // namespace harp
