#include "parallel/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/env.h"
#include "common/logging.h"
#include "common/timer.h"

namespace harp {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)),
      counters_(static_cast<size_t>(num_threads_)),
      finish_ts_(static_cast<size_t>(num_threads_), 0) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int id = 1; id < num_threads_; ++id) {
    workers_.emplace_back([this, id] { WorkerLoop(id); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

int ThreadPool::DefaultThreads() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return GetEnvInt("HARP_BENCH_THREADS", std::max(1, hw));
}

void ThreadPool::RunRegionBody(int thread_id) {
  const int64_t start = NowNs();
  try {
    (*region_fn_)(thread_id);
  } catch (...) {
    std::lock_guard<std::mutex> lock(exception_mutex_);
    if (!first_exception_) first_exception_ = std::current_exception();
  }
  const int64_t end = NowNs();
  counters_[static_cast<size_t>(thread_id)].busy_ns += end - start;
  finish_ts_[static_cast<size_t>(thread_id)] = end;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (--remaining_ == 0) {
      region_end_ts_ = end;
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop(int worker_id) {
  uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_cv_.wait(lock,
                    [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
    }
    RunRegionBody(worker_id);
  }
}

void ThreadPool::RunOnAllThreads(const std::function<void(int)>& fn) {
  HARP_CHECK(!in_region_) << "nested parallel regions are not supported";
  ++parallel_regions_;

  if (num_threads_ == 1) {
    const int64_t start = NowNs();
    fn(0);
    counters_[0].busy_ns += NowNs() - start;
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    region_fn_ = &fn;
    remaining_ = num_threads_;
    ++epoch_;
    in_region_ = true;
  }
  wake_cv_.notify_all();
  RunRegionBody(0);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
  }
  // Charge each thread for the gap between finishing its share and the
  // last arrival: this is exactly the end-of-region barrier wait.
  for (int id = 0; id < num_threads_; ++id) {
    const int64_t wait =
        region_end_ts_ - finish_ts_[static_cast<size_t>(id)];
    if (wait > 0) {
      counters_[static_cast<size_t>(id)].barrier_wait_ns += wait;
    }
  }
  in_region_ = false;
  region_fn_ = nullptr;

  if (first_exception_) {
    std::exception_ptr rethrown;
    {
      std::lock_guard<std::mutex> lock(exception_mutex_);
      std::swap(rethrown, first_exception_);
    }
    std::rethrow_exception(rethrown);
  }
}

void ThreadPool::FusedRegion::Run(const std::function<void(int)>& body) {
  cursor_.store(0, std::memory_order_relaxed);
  pool_.RunOnAllThreads([&](int thread_id) {
    try {
      body(thread_id);
    } catch (const AbortTag&) {
      // A peer failed; this thread was released from a spin loop and
      // unwound cleanly. The real exception is rethrown below.
    } catch (...) {
      RecordException();
      barrier_.Abort();
    }
  });
  if (exception_) {
    // Single-threaded again (the region joined), so no lock is needed.
    std::exception_ptr rethrown;
    std::swap(rethrown, exception_);
    std::rethrow_exception(rethrown);
  }
}

void ThreadPool::FusedRegion::RecordException() {
  {
    std::lock_guard<std::mutex> lock(exception_mutex_);
    if (!exception_) exception_ = std::current_exception();
  }
  failed_.store(true, std::memory_order_release);
}

void ThreadPool::ParallelFor(int64_t n, const RangeFn& fn) {
  if (n <= 0) return;
  const int64_t chunk =
      (n + static_cast<int64_t>(num_threads_) - 1) / num_threads_;
  RunOnAllThreads([&](int thread_id) {
    const int64_t begin = static_cast<int64_t>(thread_id) * chunk;
    const int64_t end = std::min<int64_t>(n, begin + chunk);
    if (begin < end) {
      fn(begin, end, thread_id);
      ++counters_[static_cast<size_t>(thread_id)].tasks;
    }
  });
}

void ThreadPool::ParallelForDynamic(int64_t n, int64_t chunk,
                                    const RangeFn& fn) {
  if (n <= 0) return;
  const int64_t step = std::max<int64_t>(1, chunk);
  std::atomic<int64_t> cursor{0};
  RunOnAllThreads([&](int thread_id) {
    for (;;) {
      const int64_t begin =
          cursor.fetch_add(step, std::memory_order_relaxed);
      if (begin >= n) break;
      const int64_t end = std::min<int64_t>(n, begin + step);
      fn(begin, end, thread_id);
      ++counters_[static_cast<size_t>(thread_id)].tasks;
    }
  });
}

void ThreadPool::RunTasks(const std::vector<std::function<void()>>& tasks) {
  ParallelForDynamic(static_cast<int64_t>(tasks.size()), 1,
                     [&](int64_t begin, int64_t end, int) {
                       for (int64_t i = begin; i < end; ++i) {
                         tasks[static_cast<size_t>(i)]();
                       }
                     });
}

SyncSnapshot ThreadPool::Snapshot() const {
  SyncSnapshot snapshot;
  snapshot.threads = num_threads_;
  for (const auto& c : counters_) {
    snapshot.busy_ns += c.busy_ns;
    snapshot.barrier_wait_ns += c.barrier_wait_ns;
    snapshot.tasks += c.tasks;
  }
  snapshot.phase_barriers = phase_barriers_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  snapshot.parallel_regions = parallel_regions_;
  snapshot.spin_acquires = extra_spin_.acquires;
  snapshot.spin_contended = extra_spin_.contended;
  snapshot.spin_wait_ns = extra_spin_.wait_ns;
  return snapshot;
}

void ThreadPool::ResetStats() {
  for (auto& c : counters_) c.Reset();
  phase_barriers_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  parallel_regions_ = 0;
  extra_spin_ = SpinCounters{};
}

void ThreadPool::AddSpinCounters(const SpinCounters& counters) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  extra_spin_.acquires += counters.acquires;
  extra_spin_.contended += counters.contended;
  extra_spin_.wait_ns += counters.wait_ns;
}

}  // namespace harp
