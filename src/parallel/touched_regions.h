// Per-thread dirty-region bitmap for replica buffers.
//
// The DP builder keeps one histogram replica region per (thread, node of
// the current node block). Zeroing and reducing every region on every node
// block is wasted memory traffic when threads only ever touch the nodes
// whose row tasks they happened to grab. This tracker records which
// regions a thread actually wrote, so the builder can (a) skip untouched
// replicas in the reduction and (b) clear only dirty regions afterwards,
// keeping the "replica storage is all-zero between node blocks" invariant
// cheap to maintain.
//
// Concurrency contract: Mark() is called only by `thread` itself inside a
// parallel region; rows are cache-line padded so concurrent marks by
// different threads never share a line. Touched()/ThreadsTouching() may be
// read by anyone after the region's barrier.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace harp {

class TouchedRegions {
 public:
  // Starts tracking `regions` regions for `threads` threads, all clean.
  // Storage is retained across calls (grow-only).
  void Reset(int threads, size_t regions) {
    threads_ = threads;
    regions_ = regions;
    // Pad each thread's row to a cache-line multiple.
    stride_ = (regions + kLine - 1) / kLine * kLine;
    const size_t needed = static_cast<size_t>(threads) * stride_;
    if (flags_.size() < needed) flags_.resize(needed, 0);
    for (int t = 0; t < threads; ++t) {
      std::fill_n(flags_.begin() + static_cast<size_t>(t) * stride_, regions,
                  uint8_t{0});
    }
  }

  void Mark(int thread, size_t region) {
    flags_[static_cast<size_t>(thread) * stride_ + region] = 1;
  }

  bool Touched(int thread, size_t region) const {
    return flags_[static_cast<size_t>(thread) * stride_ + region] != 0;
  }

  // Threads that touched `region`, ascending (the reduction order that
  // keeps results bit-identical to summing over all threads).
  std::vector<int> ThreadsTouching(size_t region) const {
    std::vector<int> out;
    for (int t = 0; t < threads_; ++t) {
      if (Touched(t, region)) out.push_back(t);
    }
    return out;
  }

  int threads() const { return threads_; }
  size_t regions() const { return regions_; }

 private:
  static constexpr size_t kLine = 64;

  int threads_ = 0;
  size_t regions_ = 0;
  size_t stride_ = 0;
  std::vector<uint8_t> flags_;
};

}  // namespace harp
