// HarpGBDT public umbrella header.
//
// Typical use:
//   harp::SyntheticSpec spec = harp::HiggsSpec(0.5);
//   harp::Dataset data = harp::GenerateSynthetic(spec);
//   harp::TrainParams params;
//   params.mode = harp::ParallelMode::kASYNC;
//   params.grow_policy = harp::GrowPolicy::kTopK;
//   params.topk = 32;
//   harp::GbdtTrainer trainer(params);
//   harp::GbdtModel model = trainer.Train(data);
//   std::vector<double> probs = model.Predict(data);
#pragma once

#include "core/gbdt.h"          // GbdtTrainer, RunBoosting, EvalSet
#include "core/importance.h"    // ComputeImportance
#include "core/metrics.h"       // Auc, LogLoss, Rmse, ErrorRate
#include "core/model.h"         // GbdtModel
#include "core/model_io.h"      // SaveModel / LoadModel
#include "core/multiclass.h"    // MulticlassTrainer
#include "core/params.h"        // TrainParams, GrowPolicy, ParallelMode
#include "core/train_stats.h"   // TrainStats
#include "data/binary_cache.h"  // Write/ReadDatasetCache, binned cache
#include "data/binned_matrix.h" // BinnedMatrix
#include "data/csv_reader.h"    // ReadCsv
#include "data/dataset.h"       // Dataset
#include "data/dataset_stats.h" // ComputeShape
#include "data/ingest_stats.h"  // IngestStats
#include "data/libsvm_reader.h" // ReadLibsvm
#include "data/quantile.h"      // QuantileCuts
#include "data/synthetic.h"     // GenerateSynthetic + shape presets
#include "predict/flat_forest.h"  // FlatForest (SoA inference layout)
#include "predict/predictor.h"    // Predictor (block-wise batched inference)
#include "serve/model_server.h"   // ModelServer (online serving, hot swap)

#include "common/string_util.h"  // StrFormat, HumanBytes
#include "distributed/dist_gbdt.h"  // DistributedGbdt (simulated cluster)

#include "baselines/lightgbm_like.h"
#include "baselines/xgb_approx.h"
#include "baselines/xgb_hist.h"
