// Cross-module integration tests: full pipelines over the Table III shape
// presets, cache round trips feeding training, weak-scaling duplication,
// and profiling-counter sanity used by the benchmark harness.
#include <gtest/gtest.h>

#include <cstdio>

#include "harpgbdt.h"
#include "data/binary_cache.h"
#include "test_util.h"

namespace harp {
namespace {

TEST(Integration, EveryPresetTrainsEndToEnd) {
  struct Case {
    SyntheticSpec spec;
    double min_auc;
  };
  // Tiny scales: this is a pipeline test, not a benchmark.
  const Case cases[] = {
      {SynsetSpec(0.03), 0.70},
      {HiggsSpec(0.03), 0.65},
      {AirlineSpec(0.01), 0.60},
      {CriteoSpec(0.03), 0.90},  // response-encoded feature: easy
      {YfccSpec(0.08), 0.60},
  };
  for (const Case& c : cases) {
    const Dataset train = GenerateSynthetic(c.spec);
    TrainParams p;
    p.num_trees = 10;
    p.tree_size = 4;
    p.grow_policy = GrowPolicy::kTopK;
    p.topk = 8;
    p.mode = ParallelMode::kSYNC;
    p.num_threads = 2;
    GbdtTrainer trainer(p);
    const GbdtModel model = trainer.Train(train);
    const double auc = Auc(train.labels(), model.Predict(train));
    EXPECT_GT(auc, c.min_auc) << c.spec.name;
  }
}

TEST(Integration, CacheRoundtripFeedsIdenticalTraining) {
  const SyntheticSpec spec = HiggsSpec(0.02);
  const Dataset original = GenerateSynthetic(spec);
  const std::string path = "/tmp/harp_integration_cache.bin";
  std::string error;
  ASSERT_TRUE(WriteDatasetCache(path, original, &error)) << error;
  Dataset loaded;
  ASSERT_TRUE(ReadDatasetCache(path, &loaded, &error)) << error;
  std::remove(path.c_str());

  TrainParams p;
  p.num_trees = 3;
  p.tree_size = 4;
  p.num_threads = 2;
  GbdtTrainer trainer(p);
  const GbdtModel a = trainer.Train(original);
  const GbdtModel b = trainer.Train(loaded);
  for (size_t t = 0; t < a.NumTrees(); ++t) {
    EXPECT_TRUE(harp::testing::TreesEqual(a.tree(t), b.tree(t)));
  }
}

TEST(Integration, WeakScalingDuplicationPreservesShape) {
  const Dataset base = GenerateSynthetic(HiggsSpec(0.01));
  Dataset doubled = base.ConcatRows(base);
  Dataset quadrupled = doubled.ConcatRows(doubled);
  EXPECT_EQ(quadrupled.num_rows(), base.num_rows() * 4);
  EXPECT_NEAR(quadrupled.Sparseness(), base.Sparseness(), 1e-9);

  // Duplicated rows double every histogram bin, so the tree shape is
  // unchanged: same splits, same structure.
  TrainParams p;
  p.num_trees = 2;
  p.tree_size = 3;
  p.num_threads = 2;
  GbdtTrainer trainer(p);
  const GbdtModel a = trainer.Train(base);
  const GbdtModel b = trainer.Train(doubled);
  for (size_t t = 0; t < a.NumTrees(); ++t) {
    const auto& ta = a.tree(t);
    const auto& tb = b.tree(t);
    ASSERT_EQ(ta.num_nodes(), tb.num_nodes());
    for (int i = 0; i < ta.num_nodes(); ++i) {
      if (!ta.node(i).IsLeaf()) {
        EXPECT_EQ(ta.node(i).split_feature, tb.node(i).split_feature);
        EXPECT_EQ(ta.node(i).split_bin, tb.node(i).split_bin);
      }
      EXPECT_EQ(tb.node(i).num_rows, 2 * ta.node(i).num_rows);
    }
  }
}

TEST(Integration, CriteoPathologyGrowsDeepLeafwiseTrees) {
  // Section V-F: the response-correlated feature makes leafwise growth
  // keep splitting inside one branch; the tree ends far deeper than the
  // balanced depthwise equivalent.
  const Dataset train = GenerateSynthetic(CriteoSpec(0.05));
  TrainParams p;
  p.num_trees = 1;
  p.tree_size = 6;  // 64 leaves
  p.grow_policy = GrowPolicy::kLeafwise;
  p.num_threads = 2;
  TrainStats leaf_stats;
  GbdtTrainer(p).Train(train, &leaf_stats);

  p.grow_policy = GrowPolicy::kDepthwise;
  TrainStats depth_stats;
  GbdtTrainer(p).Train(train, &depth_stats);

  EXPECT_LE(depth_stats.max_tree_depth, 6);
  EXPECT_GT(leaf_stats.max_tree_depth, 9);
}

TEST(Integration, TopKConvergesLikeLeafwise) {
  // Fig. 8/9's claim at test scale: K=8 reaches an AUC within a small gap
  // of K=1 (strict leafwise) for equal tree counts.
  const Dataset all = GenerateSynthetic(HiggsSpec(0.06));
  const uint32_t train_rows = all.num_rows() * 2 / 3;
  const Dataset train = all.Slice(0, train_rows);
  const Dataset test = all.Slice(train_rows, all.num_rows());

  auto auc_for_k = [&](int k) {
    TrainParams p;
    p.num_trees = 20;
    p.tree_size = 5;
    p.grow_policy = k == 1 ? GrowPolicy::kLeafwise : GrowPolicy::kTopK;
    p.topk = k;
    p.num_threads = 2;
    GbdtTrainer trainer(p);
    const GbdtModel model = trainer.Train(train);
    return Auc(test.labels(), model.Predict(test));
  };
  const double auc_k1 = auc_for_k(1);
  const double auc_k8 = auc_for_k(8);
  const double auc_k32 = auc_for_k(32);
  EXPECT_GT(auc_k8, auc_k1 - 0.02);
  EXPECT_GT(auc_k32, auc_k1 - 0.04);
}

TEST(Integration, ProfilingCountersBehaveAsPaperArgues) {
  // HarpGBDT with node blocks must synchronize far less often than the
  // leaf-by-leaf baseline on the same workload (Section IV-D).
  const Dataset train = GenerateSynthetic(SynsetSpec(0.02));
  ThreadPool pool(2);
  const BinnedMatrix matrix = BinnedMatrix::Build(
      train, QuantileCuts::Compute(train, 256, &pool), &pool);

  TrainParams harp_params;
  harp_params.num_trees = 2;
  harp_params.tree_size = 6;
  harp_params.grow_policy = GrowPolicy::kTopK;
  harp_params.topk = 32;
  harp_params.node_blk_size = 16;
  harp_params.feature_blk_size = 16;
  harp_params.mode = ParallelMode::kDP;
  harp_params.num_threads = 2;
  TrainStats harp_stats;
  GbdtTrainer(harp_params).TrainBinned(matrix, train.labels(), &harp_stats);

  TrainParams xgb_params;
  xgb_params.num_trees = 2;
  xgb_params.tree_size = 6;
  xgb_params.grow_policy = GrowPolicy::kLeafwise;
  xgb_params.num_threads = 2;
  TrainStats xgb_stats;
  baselines::XgbHistTrainer(xgb_params)
      .TrainBinned(matrix, train.labels(), &xgb_stats);

  EXPECT_LT(harp_stats.sync.parallel_regions,
            xgb_stats.sync.parallel_regions / 2);
}

TEST(Integration, AsyncUsesFewerRegionsThanSync) {
  const Dataset train = GenerateSynthetic(HiggsSpec(0.03));
  TrainParams p;
  p.num_trees = 2;
  p.tree_size = 7;
  p.grow_policy = GrowPolicy::kTopK;
  p.topk = 16;
  p.num_threads = 4;

  auto regions = [&](ParallelMode mode, bool fused) {
    TrainParams q = p;
    q.mode = mode;
    q.use_fused_step = fused;
    TrainStats stats;
    GbdtTrainer(q).Train(train, &stats);
    return stats.sync.parallel_regions;
  };
  // ASYNC replaces per-batch regions with one region per tree. The
  // comparison pins the region-per-phase oracle: with the fused-step
  // scheduler SYNC itself is down to one region per TopK batch, so the
  // historical ASYNC-vs-SYNC region gap only exists against the unfused
  // path. The margin is deliberately modest: since SYNC's ApplySplit went
  // batched (one count+scatter region pair per TopK batch instead of per
  // node), unfused SYNC already issues far fewer regions than it used to.
  const int64_t sync_unfused = regions(ParallelMode::kSYNC, false);
  EXPECT_LT(regions(ParallelMode::kASYNC, false), sync_unfused * 3 / 4);
  // The fused scheduler shrinks SYNC's region count further still.
  EXPECT_LT(regions(ParallelMode::kSYNC, true), sync_unfused / 2);
}

}  // namespace
}  // namespace harp
