// Tests for the CSV and LIBSVM text readers, including the chunked
// parallel parsers' bit-identity against the serial oracles.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "data/csv_reader.h"
#include "data/libsvm_reader.h"
#include "data/text_chunker.h"
#include "parallel/thread_pool.h"

namespace harp {
namespace {

// Bytewise vector equality (memcmp only when non-empty — a null data()
// pointer from an empty vector is UB to pass to memcmp).
template <typename T>
bool SameBytes(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

// Bitwise dataset equality: float payloads are compared as raw bytes so
// NaN missing markers compare equal and any rounding difference fails.
void ExpectBitIdentical(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_features(), b.num_features());
  ASSERT_EQ(a.layout(), b.layout());
  EXPECT_TRUE(SameBytes(a.labels(), b.labels()));
  EXPECT_TRUE(SameBytes(a.dense_values(), b.dense_values()));
  EXPECT_EQ(a.row_ptr(), b.row_ptr());
  EXPECT_TRUE(SameBytes(a.entries(), b.entries()));
}

// Parses `content` with the serial oracle and the chunked parser at
// several chunk counts and thread counts, requiring identical outcomes:
// same Dataset bits on success, same error string on failure.
void CheckCsvOracle(const std::string& content, const CsvOptions& options) {
  Dataset serial;
  std::string serial_error;
  const bool serial_ok = ParseCsv(content, options, &serial, &serial_error);
  for (int chunks : {1, 2, 3, 7}) {
    for (int threads : {1, 2, 4}) {
      ThreadPool pool(threads);
      Dataset chunked;
      std::string chunked_error;
      const bool chunked_ok = ParseCsvChunked(
          content, options, chunks, &pool, &chunked, &chunked_error);
      ASSERT_EQ(serial_ok, chunked_ok)
          << "chunks=" << chunks << " threads=" << threads << " serial='"
          << serial_error << "' chunked='" << chunked_error << "'";
      if (serial_ok) {
        ExpectBitIdentical(serial, chunked);
      } else {
        EXPECT_EQ(serial_error, chunked_error)
            << "chunks=" << chunks << " threads=" << threads;
      }
    }
  }
}

void CheckLibsvmOracle(const std::string& content,
                       const LibsvmOptions& options) {
  Dataset serial;
  std::string serial_error;
  const bool serial_ok =
      ParseLibsvm(content, options, &serial, &serial_error);
  for (int chunks : {1, 2, 3, 7}) {
    for (int threads : {1, 2, 4}) {
      ThreadPool pool(threads);
      Dataset chunked;
      std::string chunked_error;
      const bool chunked_ok = ParseLibsvmChunked(
          content, options, chunks, &pool, &chunked, &chunked_error);
      ASSERT_EQ(serial_ok, chunked_ok)
          << "chunks=" << chunks << " threads=" << threads << " serial='"
          << serial_error << "' chunked='" << chunked_error << "'";
      if (serial_ok) {
        ExpectBitIdentical(serial, chunked);
      } else {
        EXPECT_EQ(serial_error, chunked_error)
            << "chunks=" << chunks << " threads=" << threads;
      }
    }
  }
}

// ---------- CSV ----------

TEST(Csv, ParsesBasicTable) {
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ParseCsv("1,0.5,2.5\n0,1.5,3.5\n", CsvOptions{}, &ds, &error))
      << error;
  EXPECT_EQ(ds.num_rows(), 2u);
  EXPECT_EQ(ds.num_features(), 2u);
  EXPECT_FLOAT_EQ(ds.labels()[0], 1.0f);
  EXPECT_FLOAT_EQ(ds.labels()[1], 0.0f);
  EXPECT_FLOAT_EQ(ds.At(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(ds.At(1, 1), 3.5f);
}

TEST(Csv, EmptyFieldIsMissing) {
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ParseCsv("1,,2\n0,3,NA\n", CsvOptions{}, &ds, &error)) << error;
  EXPECT_TRUE(IsMissing(ds.At(0, 0)));
  EXPECT_TRUE(IsMissing(ds.At(1, 1)));
  EXPECT_FLOAT_EQ(ds.At(1, 0), 3.0f);
}

TEST(Csv, HeaderSkipped) {
  CsvOptions options;
  options.has_header = true;
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ParseCsv("label,f0\n1,2\n", options, &ds, &error)) << error;
  EXPECT_EQ(ds.num_rows(), 1u);
  EXPECT_FLOAT_EQ(ds.At(0, 0), 2.0f);
}

TEST(Csv, LabelColumnSelectable) {
  CsvOptions options;
  options.label_column = 2;
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ParseCsv("0.1,0.2,1\n0.3,0.4,0\n", options, &ds, &error))
      << error;
  EXPECT_FLOAT_EQ(ds.labels()[0], 1.0f);
  EXPECT_FLOAT_EQ(ds.At(0, 0), 0.1f);
  EXPECT_FLOAT_EQ(ds.At(0, 1), 0.2f);
}

TEST(Csv, RejectsInconsistentColumns) {
  Dataset ds;
  std::string error;
  EXPECT_FALSE(ParseCsv("1,2,3\n1,2\n", CsvOptions{}, &ds, &error));
  EXPECT_NE(error.find("expected"), std::string::npos);
}

TEST(Csv, RejectsBadLabelAndValue) {
  Dataset ds;
  std::string error;
  EXPECT_FALSE(ParseCsv("abc,1\n", CsvOptions{}, &ds, &error));
  EXPECT_FALSE(ParseCsv("1,xyz\n", CsvOptions{}, &ds, &error));
}

TEST(Csv, RejectsEmptyInput) {
  Dataset ds;
  std::string error;
  EXPECT_FALSE(ParseCsv("", CsvOptions{}, &ds, &error));
  EXPECT_FALSE(ParseCsv("\n\n", CsvOptions{}, &ds, &error));
}

TEST(Csv, SkipsBlankLines) {
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ParseCsv("1,2\n\n0,3\n\n", CsvOptions{}, &ds, &error)) << error;
  EXPECT_EQ(ds.num_rows(), 2u);
}

TEST(Csv, ReadsFromFile) {
  const std::string path = "/tmp/harp_test_csv.csv";
  {
    std::ofstream out(path);
    out << "1,5.5\n0,6.5\n";
  }
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ReadCsv(path, CsvOptions{}, &ds, &error)) << error;
  EXPECT_EQ(ds.num_rows(), 2u);
  EXPECT_FLOAT_EQ(ds.At(1, 0), 6.5f);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadCsv(path, CsvOptions{}, &ds, &error));
}

// ---------- LIBSVM ----------

TEST(Libsvm, ParsesBasicFile) {
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ParseLibsvm("1 1:0.5 3:2.5\n0 2:1.5\n", LibsvmOptions{}, &ds,
                          &error))
      << error;
  EXPECT_EQ(ds.num_rows(), 2u);
  EXPECT_EQ(ds.num_features(), 3u);
  EXPECT_FLOAT_EQ(ds.At(0, 0), 0.5f);
  EXPECT_TRUE(IsMissing(ds.At(0, 1)));
  EXPECT_FLOAT_EQ(ds.At(0, 2), 2.5f);
  EXPECT_FLOAT_EQ(ds.At(1, 1), 1.5f);
}

TEST(Libsvm, ZeroBasedIndices) {
  LibsvmOptions options;
  options.zero_based = true;
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ParseLibsvm("1 0:7\n", options, &ds, &error)) << error;
  EXPECT_FLOAT_EQ(ds.At(0, 0), 7.0f);
}

TEST(Libsvm, OneBasedIndexZeroRejected) {
  Dataset ds;
  std::string error;
  EXPECT_FALSE(ParseLibsvm("1 0:7\n", LibsvmOptions{}, &ds, &error));
}

TEST(Libsvm, ForcedFeatureCount) {
  LibsvmOptions options;
  options.num_features = 10;
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ParseLibsvm("1 2:3\n", options, &ds, &error)) << error;
  EXPECT_EQ(ds.num_features(), 10u);
  options.num_features = 1;
  EXPECT_FALSE(ParseLibsvm("1 2:3\n", options, &ds, &error));
}

TEST(Libsvm, RejectsNonIncreasingIndices) {
  Dataset ds;
  std::string error;
  EXPECT_FALSE(ParseLibsvm("1 2:1 2:2\n", LibsvmOptions{}, &ds, &error));
  EXPECT_FALSE(ParseLibsvm("1 3:1 2:2\n", LibsvmOptions{}, &ds, &error));
}

TEST(Libsvm, RejectsMalformedEntries) {
  Dataset ds;
  std::string error;
  EXPECT_FALSE(ParseLibsvm("x 1:2\n", LibsvmOptions{}, &ds, &error));
  EXPECT_FALSE(ParseLibsvm("1 a:2\n", LibsvmOptions{}, &ds, &error));
  EXPECT_FALSE(ParseLibsvm("1 1:b\n", LibsvmOptions{}, &ds, &error));
  EXPECT_FALSE(ParseLibsvm("1 1:2:3\n", LibsvmOptions{}, &ds, &error));
}

TEST(Libsvm, RowWithNoFeaturesIsValid) {
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ParseLibsvm("1\n0 1:5\n", LibsvmOptions{}, &ds, &error))
      << error;
  EXPECT_EQ(ds.num_rows(), 2u);
  EXPECT_TRUE(IsMissing(ds.At(0, 0)));
}

TEST(Libsvm, ReadsFromFile) {
  const std::string path = "/tmp/harp_test_libsvm.txt";
  {
    std::ofstream out(path);
    out << "1 1:2\n";
  }
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ReadLibsvm(path, LibsvmOptions{}, &ds, &error)) << error;
  EXPECT_EQ(ds.num_rows(), 1u);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadLibsvm(path, LibsvmOptions{}, &ds, &error));
}

// ---------- chunked parsers vs serial oracle ----------

// A CSV document long enough that every chunk count in the sweep yields
// multiple real chunks, with missing values, negatives, exponents and
// blank lines sprinkled deterministically.
std::string MakeCsvDoc(int rows, const char* eol = "\n") {
  std::string doc;
  for (int r = 0; r < rows; ++r) {
    if (r % 11 == 5) {  // interleave blank / whitespace-only lines
      doc += (r % 2 == 0) ? "" : "   ";
      doc += eol;
    }
    doc += (r % 3 == 0) ? "1" : "0";
    for (int c = 0; c < 5; ++c) {
      doc += ',';
      const int k = r * 5 + c;
      if (k % 13 == 3) {
        // missing field spellings
        doc += (k % 2 == 0) ? "" : (k % 3 == 0 ? "NA" : "nan");
      } else if (k % 7 == 2) {
        doc += "-";
        doc += std::to_string(k) + ".5e-2";
      } else {
        doc += std::to_string(k % 100) + "." + std::to_string(k % 997);
      }
    }
    doc += eol;
  }
  return doc;
}

std::string MakeLibsvmDoc(int rows, const char* eol = "\n") {
  std::string doc;
  for (int r = 0; r < rows; ++r) {
    if (r % 9 == 4) {
      doc += "  ";
      doc += eol;
    }
    doc += (r % 2 == 0) ? "1" : "-1";
    if (r % 17 != 8) {  // some rows have no features at all
      for (int c = 0; c < 1 + r % 4; ++c) {
        const int feature = 1 + c * 3 + r % 3;
        doc += " " + std::to_string(feature) + ":" +
               std::to_string(r % 50) + "." + std::to_string(c + 1) + "25";
      }
    }
    doc += eol;
  }
  return doc;
}

TEST(CsvChunked, BitIdenticalAcrossChunkAndThreadCounts) {
  CheckCsvOracle(MakeCsvDoc(200), CsvOptions{});
}

TEST(CsvChunked, BitIdenticalWithHeaderAndLabelColumn) {
  CsvOptions options;
  options.has_header = true;
  options.label_column = 3;
  CheckCsvOracle("h0,h1,h2,h3,h4,h5\n" + MakeCsvDoc(97), options);
}

TEST(CsvChunked, CrlfMatchesLf) {
  const std::string lf = MakeCsvDoc(83, "\n");
  const std::string crlf = MakeCsvDoc(83, "\r\n");
  Dataset from_lf, from_crlf;
  std::string error;
  ASSERT_TRUE(ParseCsv(lf, CsvOptions{}, &from_lf, &error)) << error;
  ASSERT_TRUE(ParseCsv(crlf, CsvOptions{}, &from_crlf, &error)) << error;
  ExpectBitIdentical(from_lf, from_crlf);
  CheckCsvOracle(crlf, CsvOptions{});
}

TEST(CsvChunked, MissingTrailingNewline) {
  std::string doc = MakeCsvDoc(59);
  doc.pop_back();  // drop the final '\n'
  CheckCsvOracle(doc, CsvOptions{});
  std::string crlf = MakeCsvDoc(59, "\r\n");
  crlf.resize(crlf.size() - 2);  // drop the final "\r\n" entirely...
  crlf += "\r";                  // ...then end on a bare CR
  CheckCsvOracle(crlf, CsvOptions{});
}

TEST(CsvChunked, SingleLineNoNewline) {
  CheckCsvOracle("1,2,3", CsvOptions{});
}

TEST(CsvChunked, EmptyAndHeaderOnlyInputs) {
  CheckCsvOracle("", CsvOptions{});
  CheckCsvOracle("\n\n  \n", CsvOptions{});
  CsvOptions with_header;
  with_header.has_header = true;
  CheckCsvOracle("label,f0,f1\n", with_header);
  CheckCsvOracle("label,f0,f1", with_header);
  CheckCsvOracle("\n\nlabel,f0,f1\n\n\n", with_header);
}

TEST(CsvChunked, ErrorLineNumbersFromLaterChunks) {
  // 60 clean lines, then a bad value: every chunk count must report the
  // same "line N" as the serial parser even when the bad line lands in a
  // non-first chunk.
  std::string doc = MakeCsvDoc(60);
  doc += "1,2,xyz,4,5,6\n";
  doc += MakeCsvDoc(10);
  CheckCsvOracle(doc, CsvOptions{});
  Dataset ds;
  std::string error;
  ASSERT_FALSE(ParseCsv(doc, CsvOptions{}, &ds, &error));
  EXPECT_NE(error.find("bad value 'xyz'"), std::string::npos) << error;
}

TEST(CsvChunked, FieldCountErrorFromLaterChunks) {
  std::string doc = MakeCsvDoc(48);
  doc += "1,2,3\n";  // 3 fields instead of 6
  doc += MakeCsvDoc(12);
  CheckCsvOracle(doc, CsvOptions{});
}

TEST(CsvChunked, BadLabelErrorFromLaterChunks) {
  std::string doc = MakeCsvDoc(52);
  doc += "oops,1,2,3,4,5\n";
  CheckCsvOracle(doc, CsvOptions{});
}

TEST(CsvChunked, LabelColumnOutOfRange) {
  CsvOptions options;
  options.label_column = 9;
  CheckCsvOracle(MakeCsvDoc(20), options);
}

TEST(CsvChunked, AdversarialChunkBoundaries) {
  // Mix of very short and very long lines so equal-byte cut points land
  // inside lines, right on delimiters, and inside CRLF pairs.
  std::string doc;
  for (int r = 0; r < 40; ++r) {
    doc += std::to_string(r % 2);
    const int width = (r % 5 == 0) ? 40 : 1;
    for (int c = 0; c < 2; ++c) {
      doc += ",";
      for (int k = 0; k < width; ++k) doc += "1";
      doc += "." + std::to_string(r);
    }
    doc += (r % 4 == 0) ? "\r\n" : "\n";
  }
  for (int chunks = 1; chunks <= 9; ++chunks) {
    Dataset serial, chunked;
    std::string e1, e2;
    ASSERT_TRUE(ParseCsv(doc, CsvOptions{}, &serial, &e1)) << e1;
    ThreadPool pool(3);
    ASSERT_TRUE(ParseCsvChunked(doc, CsvOptions{}, chunks, &pool, &chunked,
                                &e2))
        << e2;
    ExpectBitIdentical(serial, chunked);
  }
}

TEST(CsvChunked, NullPoolRunsSerially) {
  Dataset serial, chunked;
  std::string e1, e2;
  const std::string doc = MakeCsvDoc(33);
  ASSERT_TRUE(ParseCsv(doc, CsvOptions{}, &serial, &e1)) << e1;
  ASSERT_TRUE(
      ParseCsvChunked(doc, CsvOptions{}, 5, nullptr, &chunked, &e2))
      << e2;
  ExpectBitIdentical(serial, chunked);
}

TEST(LibsvmChunked, BitIdenticalAcrossChunkAndThreadCounts) {
  CheckLibsvmOracle(MakeLibsvmDoc(150), LibsvmOptions{});
  LibsvmOptions zero_based;
  zero_based.zero_based = true;
  CheckLibsvmOracle(MakeLibsvmDoc(150), zero_based);
}

TEST(LibsvmChunked, CrlfMatchesLf) {
  const std::string lf = MakeLibsvmDoc(77, "\n");
  const std::string crlf = MakeLibsvmDoc(77, "\r\n");
  Dataset from_lf, from_crlf;
  std::string error;
  ASSERT_TRUE(ParseLibsvm(lf, LibsvmOptions{}, &from_lf, &error)) << error;
  ASSERT_TRUE(ParseLibsvm(crlf, LibsvmOptions{}, &from_crlf, &error))
      << error;
  ExpectBitIdentical(from_lf, from_crlf);
  CheckLibsvmOracle(crlf, LibsvmOptions{});
}

TEST(LibsvmChunked, MissingTrailingNewline) {
  std::string doc = MakeLibsvmDoc(41);
  doc.pop_back();
  CheckLibsvmOracle(doc, LibsvmOptions{});
}

TEST(LibsvmChunked, EmptyInputs) {
  CheckLibsvmOracle("", LibsvmOptions{});
  CheckLibsvmOracle("\n \n\t\n", LibsvmOptions{});
}

TEST(LibsvmChunked, ErrorLineNumbersFromLaterChunks) {
  std::string doc = MakeLibsvmDoc(64);
  doc += "1 a:b\n";
  doc += MakeLibsvmDoc(8);
  CheckLibsvmOracle(doc, LibsvmOptions{});
  Dataset ds;
  std::string error;
  ASSERT_FALSE(ParseLibsvm(doc, LibsvmOptions{}, &ds, &error));
  EXPECT_NE(error.find("bad entry 'a:b'"), std::string::npos) << error;
}

TEST(LibsvmChunked, OrderAndBaseErrorsMatchSerial) {
  std::string doc = MakeLibsvmDoc(30);
  doc += "1 3:1 2:2\n";  // non-increasing indices
  CheckLibsvmOracle(doc, LibsvmOptions{});
  doc = MakeLibsvmDoc(30);
  doc += "1 0:7\n";  // below 1-based base
  CheckLibsvmOracle(doc, LibsvmOptions{});
  doc = MakeLibsvmDoc(30);
  doc += "1 1:2:3\n";  // too many colons
  CheckLibsvmOracle(doc, LibsvmOptions{});
}

TEST(LibsvmChunked, ForcedFeatureCountMatchesSerial) {
  LibsvmOptions options;
  options.num_features = 64;
  CheckLibsvmOracle(MakeLibsvmDoc(90), options);
  options.num_features = 2;  // too small -> same error as serial
  CheckLibsvmOracle(MakeLibsvmDoc(90), options);
}

// ---------- LIBSVM qid: query groups ----------

// Ranking-style document: qid-grouped rows with variable docs per query
// and assorted feature patterns (including feature-less rows).
std::string MakeLibsvmQidDoc(int queries, const char* eol = "\n") {
  std::string doc;
  int row = 0;
  for (int q = 0; q < queries; ++q) {
    if (q % 7 == 3) {  // blank lines between queries
      doc += "   ";
      doc += eol;
    }
    const int docs = 1 + (q * 13) % 5;
    for (int d = 0; d < docs; ++d, ++row) {
      doc += std::to_string(row % 3);           // relevance grade
      doc += " qid:" + std::to_string(q * 10);  // non-consecutive ids
      if (row % 11 != 7) {
        for (int c = 0; c < 1 + row % 3; ++c) {
          doc += " " + std::to_string(1 + c * 2) + ":" +
                 std::to_string(row % 9) + "." + std::to_string(c);
        }
      }
      doc += eol;
    }
  }
  return doc;
}

TEST(LibsvmQid, ParsesGroupsFromQidColumns) {
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ParseLibsvm(
      "2 qid:1 1:0.5\n1 qid:1 2:0.25\n0 qid:3 1:1.5\n1 qid:7\n",
      LibsvmOptions{}, &ds, &error))
      << error;
  ASSERT_TRUE(ds.has_groups());
  EXPECT_EQ(ds.num_groups(), 3u);
  EXPECT_EQ(ds.group_ptr(), (std::vector<uint32_t>{0, 2, 3, 4}));
  // The qid token is not a feature: row 0 has features 1 and nothing else.
  EXPECT_FLOAT_EQ(ds.At(0, 0), 0.5f);
  EXPECT_EQ(ds.num_features(), 2u);
  EXPECT_FLOAT_EQ(ds.labels()[0], 2.0f);
}

TEST(LibsvmQid, FileWithoutQidHasNoGroups) {
  Dataset ds;
  std::string error;
  ASSERT_TRUE(
      ParseLibsvm("1 1:0.5\n0 2:1.5\n", LibsvmOptions{}, &ds, &error));
  EXPECT_FALSE(ds.has_groups());
}

TEST(LibsvmQid, EqualConsecutiveQidsShareOneGroup) {
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ParseLibsvm("1 qid:5 1:1\n0 qid:5 1:2\n0 qid:5\n",
                          LibsvmOptions{}, &ds, &error));
  EXPECT_EQ(ds.num_groups(), 1u);
}

TEST(LibsvmQid, RejectsBadQidValues) {
  Dataset ds;
  std::string error;
  EXPECT_FALSE(ParseLibsvm("1 qid:abc 1:2\n", LibsvmOptions{}, &ds, &error));
  EXPECT_NE(error.find("bad qid 'qid:abc'"), std::string::npos) << error;
  EXPECT_FALSE(ParseLibsvm("1 qid:-3 1:2\n", LibsvmOptions{}, &ds, &error));
  EXPECT_FALSE(ParseLibsvm("1 qid: 1:2\n", LibsvmOptions{}, &ds, &error));
}

TEST(LibsvmQid, RejectsPartialQidCoverage) {
  Dataset ds;
  std::string error;
  // qid regime established, then a row without one.
  EXPECT_FALSE(ParseLibsvm("1 qid:1 1:2\n0 1:3\n", LibsvmOptions{}, &ds,
                           &error));
  EXPECT_NE(error.find("line 2: qid must appear on all rows or none"),
            std::string::npos)
      << error;
  // No-qid regime established, then a qid appears.
  EXPECT_FALSE(ParseLibsvm("1 1:2\n0 qid:1 1:3\n", LibsvmOptions{}, &ds,
                           &error));
  EXPECT_NE(error.find("line 2: qid must appear on all rows or none"),
            std::string::npos)
      << error;
}

TEST(LibsvmQid, RejectsDecreasingQids) {
  Dataset ds;
  std::string error;
  EXPECT_FALSE(ParseLibsvm("1 qid:5 1:1\n0 qid:4 1:2\n", LibsvmOptions{},
                           &ds, &error));
  EXPECT_NE(error.find("line 2: qid out of order (decreasing)"),
            std::string::npos)
      << error;
  // Non-consecutive but increasing ids are fine.
  EXPECT_TRUE(ParseLibsvm("1 qid:5 1:1\n0 qid:50 1:2\n", LibsvmOptions{},
                          &ds, &error))
      << error;
}

TEST(LibsvmQidChunked, BitIdenticalAcrossChunkAndThreadCounts) {
  CheckLibsvmOracle(MakeLibsvmQidDoc(40), LibsvmOptions{});
  CheckLibsvmOracle(MakeLibsvmQidDoc(40, "\r\n"), LibsvmOptions{});
  std::string no_trailing = MakeLibsvmQidDoc(17);
  no_trailing.pop_back();
  CheckLibsvmOracle(no_trailing, LibsvmOptions{});
}

TEST(LibsvmQidChunked, GroupsMatchSerialOracle) {
  const std::string doc = MakeLibsvmQidDoc(40);
  Dataset serial, chunked;
  std::string e1, e2;
  ASSERT_TRUE(ParseLibsvm(doc, LibsvmOptions{}, &serial, &e1)) << e1;
  ASSERT_TRUE(serial.has_groups());
  for (int chunks : {1, 2, 3, 7, 13}) {
    ThreadPool pool(4);
    ASSERT_TRUE(ParseLibsvmChunked(doc, LibsvmOptions{}, chunks, &pool,
                                   &chunked, &e2))
        << e2;
    EXPECT_EQ(serial.group_ptr(), chunked.group_ptr())
        << "chunks=" << chunks;
  }
}

TEST(LibsvmQidChunked, BadQidValueInLaterChunk) {
  std::string doc = MakeLibsvmQidDoc(30);
  doc += "1 qid:9999x 1:2\n";
  doc += "1 qid:10000 1:3\n";
  CheckLibsvmOracle(doc, LibsvmOptions{});
}

TEST(LibsvmQidChunked, MissingQidInLaterChunk) {
  // qid regime set by chunk 1; the violating bare row lands in later
  // chunks for most chunk counts.
  std::string doc = MakeLibsvmQidDoc(30);
  doc += "1 1:2\n";
  doc += MakeLibsvmQidDoc(5);
  CheckLibsvmOracle(doc, LibsvmOptions{});
}

TEST(LibsvmQidChunked, UnexpectedQidInLaterChunk) {
  // No-qid regime set by chunk 1; a qid row appears later.
  std::string doc = MakeLibsvmDoc(40);
  doc += "1 qid:3 1:2\n";
  doc += MakeLibsvmDoc(6);
  CheckLibsvmOracle(doc, LibsvmOptions{});
}

TEST(LibsvmQidChunked, DecreasingQidAcrossChunkBoundary) {
  // The decrease is only visible when consecutive chunks are stitched:
  // both halves are internally consistent.
  std::string first;
  for (int r = 0; r < 25; ++r) {
    first += "1 qid:" + std::to_string(100 + r) + " 1:0.5\n";
  }
  std::string second;
  for (int r = 0; r < 25; ++r) {
    second += "0 qid:" + std::to_string(50 + r) + " 1:1.5\n";
  }
  CheckLibsvmOracle(first + second, LibsvmOptions{});
}

TEST(LibsvmQidChunked, QidAndBadEntryOnTheSameLine) {
  // One line carries both a malformed entry and establishes qid state;
  // a later line violates ordering. The serial parser reports the entry
  // error first — chunked must agree no matter where the cuts fall.
  std::string doc = MakeLibsvmQidDoc(12);
  doc += "1 qid:99990 broken:entry:x\n";
  doc += "1 qid:3 1:2\n";  // decreasing vs 99990, but past the error line
  CheckLibsvmOracle(doc, LibsvmOptions{});
  // And the mirrored precedence: the semantic violation strictly before
  // the syntax error must win instead.
  std::string doc2 = MakeLibsvmQidDoc(12);
  doc2 += "1 qid:3 1:2\n";  // decreasing: ids in MakeLibsvmQidDoc reach 110
  doc2 += "1 qid:99990 broken:entry:x\n";
  CheckLibsvmOracle(doc2, LibsvmOptions{});
}

TEST(LibsvmQidChunked, BadQidAndBadLabelPrecedence) {
  // Bad label on one line, bad qid on the next: serial reports the label
  // line; every chunking must match.
  std::string doc = MakeLibsvmQidDoc(10);
  doc += "zzz qid:99990 1:2\n";
  doc += "1 qid:bad 1:2\n";
  CheckLibsvmOracle(doc, LibsvmOptions{});
}

// ---------- IngestStats from the file readers ----------

TEST(IngestStatsTest, FilledByReadCsv) {
  const std::string path = "/tmp/harp_test_ingest_csv.csv";
  const std::string doc = MakeCsvDoc(100);
  {
    std::ofstream out(path, std::ios::binary);
    out << doc;
  }
  Dataset ds;
  std::string error;
  IngestStats stats;
  ASSERT_TRUE(ReadCsv(path, CsvOptions{}, &ds, &error, &stats)) << error;
  EXPECT_EQ(stats.bytes, doc.size());
  EXPECT_EQ(stats.rows, ds.num_rows());
  EXPECT_GE(stats.read_ns, 0);
  EXPECT_GT(stats.parse_ns, 0);
  EXPECT_GE(stats.chunks, 1);
  const std::string summary = stats.Summary();
  EXPECT_NE(summary.find("ingest:"), std::string::npos) << summary;
  EXPECT_NE(summary.find("rows"), std::string::npos) << summary;
  std::remove(path.c_str());
}

TEST(IngestStatsTest, FilledByReadLibsvm) {
  const std::string path = "/tmp/harp_test_ingest_libsvm.txt";
  const std::string doc = MakeLibsvmDoc(80);
  {
    std::ofstream out(path, std::ios::binary);
    out << doc;
  }
  Dataset ds;
  std::string error;
  IngestStats stats;
  ThreadPool pool(2);
  ASSERT_TRUE(
      ReadLibsvm(path, LibsvmOptions{}, &ds, &error, &stats, &pool))
      << error;
  EXPECT_EQ(stats.bytes, doc.size());
  EXPECT_EQ(stats.rows, ds.num_rows());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace harp
