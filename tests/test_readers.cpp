// Tests for the CSV and LIBSVM text readers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/csv_reader.h"
#include "data/libsvm_reader.h"

namespace harp {
namespace {

// ---------- CSV ----------

TEST(Csv, ParsesBasicTable) {
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ParseCsv("1,0.5,2.5\n0,1.5,3.5\n", CsvOptions{}, &ds, &error))
      << error;
  EXPECT_EQ(ds.num_rows(), 2u);
  EXPECT_EQ(ds.num_features(), 2u);
  EXPECT_FLOAT_EQ(ds.labels()[0], 1.0f);
  EXPECT_FLOAT_EQ(ds.labels()[1], 0.0f);
  EXPECT_FLOAT_EQ(ds.At(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(ds.At(1, 1), 3.5f);
}

TEST(Csv, EmptyFieldIsMissing) {
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ParseCsv("1,,2\n0,3,NA\n", CsvOptions{}, &ds, &error)) << error;
  EXPECT_TRUE(IsMissing(ds.At(0, 0)));
  EXPECT_TRUE(IsMissing(ds.At(1, 1)));
  EXPECT_FLOAT_EQ(ds.At(1, 0), 3.0f);
}

TEST(Csv, HeaderSkipped) {
  CsvOptions options;
  options.has_header = true;
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ParseCsv("label,f0\n1,2\n", options, &ds, &error)) << error;
  EXPECT_EQ(ds.num_rows(), 1u);
  EXPECT_FLOAT_EQ(ds.At(0, 0), 2.0f);
}

TEST(Csv, LabelColumnSelectable) {
  CsvOptions options;
  options.label_column = 2;
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ParseCsv("0.1,0.2,1\n0.3,0.4,0\n", options, &ds, &error))
      << error;
  EXPECT_FLOAT_EQ(ds.labels()[0], 1.0f);
  EXPECT_FLOAT_EQ(ds.At(0, 0), 0.1f);
  EXPECT_FLOAT_EQ(ds.At(0, 1), 0.2f);
}

TEST(Csv, RejectsInconsistentColumns) {
  Dataset ds;
  std::string error;
  EXPECT_FALSE(ParseCsv("1,2,3\n1,2\n", CsvOptions{}, &ds, &error));
  EXPECT_NE(error.find("expected"), std::string::npos);
}

TEST(Csv, RejectsBadLabelAndValue) {
  Dataset ds;
  std::string error;
  EXPECT_FALSE(ParseCsv("abc,1\n", CsvOptions{}, &ds, &error));
  EXPECT_FALSE(ParseCsv("1,xyz\n", CsvOptions{}, &ds, &error));
}

TEST(Csv, RejectsEmptyInput) {
  Dataset ds;
  std::string error;
  EXPECT_FALSE(ParseCsv("", CsvOptions{}, &ds, &error));
  EXPECT_FALSE(ParseCsv("\n\n", CsvOptions{}, &ds, &error));
}

TEST(Csv, SkipsBlankLines) {
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ParseCsv("1,2\n\n0,3\n\n", CsvOptions{}, &ds, &error)) << error;
  EXPECT_EQ(ds.num_rows(), 2u);
}

TEST(Csv, ReadsFromFile) {
  const std::string path = "/tmp/harp_test_csv.csv";
  {
    std::ofstream out(path);
    out << "1,5.5\n0,6.5\n";
  }
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ReadCsv(path, CsvOptions{}, &ds, &error)) << error;
  EXPECT_EQ(ds.num_rows(), 2u);
  EXPECT_FLOAT_EQ(ds.At(1, 0), 6.5f);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadCsv(path, CsvOptions{}, &ds, &error));
}

// ---------- LIBSVM ----------

TEST(Libsvm, ParsesBasicFile) {
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ParseLibsvm("1 1:0.5 3:2.5\n0 2:1.5\n", LibsvmOptions{}, &ds,
                          &error))
      << error;
  EXPECT_EQ(ds.num_rows(), 2u);
  EXPECT_EQ(ds.num_features(), 3u);
  EXPECT_FLOAT_EQ(ds.At(0, 0), 0.5f);
  EXPECT_TRUE(IsMissing(ds.At(0, 1)));
  EXPECT_FLOAT_EQ(ds.At(0, 2), 2.5f);
  EXPECT_FLOAT_EQ(ds.At(1, 1), 1.5f);
}

TEST(Libsvm, ZeroBasedIndices) {
  LibsvmOptions options;
  options.zero_based = true;
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ParseLibsvm("1 0:7\n", options, &ds, &error)) << error;
  EXPECT_FLOAT_EQ(ds.At(0, 0), 7.0f);
}

TEST(Libsvm, OneBasedIndexZeroRejected) {
  Dataset ds;
  std::string error;
  EXPECT_FALSE(ParseLibsvm("1 0:7\n", LibsvmOptions{}, &ds, &error));
}

TEST(Libsvm, ForcedFeatureCount) {
  LibsvmOptions options;
  options.num_features = 10;
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ParseLibsvm("1 2:3\n", options, &ds, &error)) << error;
  EXPECT_EQ(ds.num_features(), 10u);
  options.num_features = 1;
  EXPECT_FALSE(ParseLibsvm("1 2:3\n", options, &ds, &error));
}

TEST(Libsvm, RejectsNonIncreasingIndices) {
  Dataset ds;
  std::string error;
  EXPECT_FALSE(ParseLibsvm("1 2:1 2:2\n", LibsvmOptions{}, &ds, &error));
  EXPECT_FALSE(ParseLibsvm("1 3:1 2:2\n", LibsvmOptions{}, &ds, &error));
}

TEST(Libsvm, RejectsMalformedEntries) {
  Dataset ds;
  std::string error;
  EXPECT_FALSE(ParseLibsvm("x 1:2\n", LibsvmOptions{}, &ds, &error));
  EXPECT_FALSE(ParseLibsvm("1 a:2\n", LibsvmOptions{}, &ds, &error));
  EXPECT_FALSE(ParseLibsvm("1 1:b\n", LibsvmOptions{}, &ds, &error));
  EXPECT_FALSE(ParseLibsvm("1 1:2:3\n", LibsvmOptions{}, &ds, &error));
}

TEST(Libsvm, RowWithNoFeaturesIsValid) {
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ParseLibsvm("1\n0 1:5\n", LibsvmOptions{}, &ds, &error))
      << error;
  EXPECT_EQ(ds.num_rows(), 2u);
  EXPECT_TRUE(IsMissing(ds.At(0, 0)));
}

TEST(Libsvm, ReadsFromFile) {
  const std::string path = "/tmp/harp_test_libsvm.txt";
  {
    std::ofstream out(path);
    out << "1 1:2\n";
  }
  Dataset ds;
  std::string error;
  ASSERT_TRUE(ReadLibsvm(path, LibsvmOptions{}, &ds, &error)) << error;
  EXPECT_EQ(ds.num_rows(), 1u);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadLibsvm(path, LibsvmOptions{}, &ds, &error));
}

}  // namespace
}  // namespace harp
