// Serving-layer tests: epoch-based snapshot reclamation (pins keep
// generations alive, quiescent generations are freed, concurrent
// publish/read stress), admission-queue sealing (full / deadline /
// forced) and drain semantics, and ModelServer end-to-end — bit-identical
// margins vs the batch Predictor, deadline flushing without an explicit
// Flush, global callback ordering, and hot swap under concurrent load
// with per-version bit-exact verification. The concurrent tests double as
// the TSan targets for the serve subsystem.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "core/gbdt.h"
#include "data/dataset.h"
#include "predict/flat_forest.h"
#include "serve/admission_queue.h"
#include "serve/model_server.h"
#include "serve/snapshot.h"
#include "test_util.h"

namespace harp {
namespace {

using testing::MakeDataset;

TrainParams Params(int trees, int tree_size) {
  TrainParams p;
  p.num_trees = trees;
  p.tree_size = tree_size;
  p.num_threads = 2;
  return p;
}

// Tree-less snapshot whose base margin encodes its version, so readers
// can detect a torn or stale-freed generation by cross-checking.
std::unique_ptr<const ModelSnapshot> TaggedSnapshot(uint64_t version) {
  auto forest = std::make_shared<const FlatForest>(FlatForest::BuildFromTrees(
      nullptr, 0, /*base_margin=*/static_cast<double>(version)));
  return std::make_unique<const ModelSnapshot>(std::move(forest), version);
}

// Densifies `dataset` rows to `width` floats (NaN = missing) for Submit.
std::vector<float> DenseRows(const Dataset& dataset, uint32_t width) {
  std::vector<float> out(
      static_cast<size_t>(dataset.num_rows()) * width, kMissingValue);
  for (uint32_t r = 0; r < dataset.num_rows(); ++r) {
    float* row = out.data() + static_cast<size_t>(r) * width;
    dataset.ForEachInRow(r, [&](uint32_t f, float v) {
      if (f < width) row[f] = v;
    });
  }
  return out;
}

TEST(SnapshotHolder, PublishRetiresAndFreesQuiescentGenerations) {
  SnapshotHolder holder(2, TaggedSnapshot(1));
  EXPECT_EQ(holder.CurrentVersion(), 1u);
  // No readers: each publish retires the previous generation and can free
  // it immediately (no pin protects it).
  for (uint64_t v = 2; v <= 5; ++v) holder.Publish(TaggedSnapshot(v));
  EXPECT_EQ(holder.CurrentVersion(), 5u);
  EXPECT_EQ(holder.retired_total(), 4);
  EXPECT_EQ(holder.freed_total(), 4);
  EXPECT_EQ(holder.TryReclaim(), 0u);
}

TEST(SnapshotHolder, PinKeepsOldGenerationReadable) {
  SnapshotHolder holder(2, TaggedSnapshot(1));
  {
    const SnapshotHolder::ReadGuard guard = holder.Acquire(0);
    EXPECT_EQ(guard->version(), 1u);
    holder.Publish(TaggedSnapshot(2));
    // The pinned generation must stay alive and intact across the swap.
    EXPECT_EQ(guard->version(), 1u);
    EXPECT_EQ(guard->forest().base_margin(), 1.0);
    EXPECT_EQ(holder.retired_total(), 1);
    EXPECT_EQ(holder.freed_total(), 0);
    EXPECT_EQ(holder.TryReclaim(), 1u);  // still pinned
    // A fresh acquire on another slot sees the new generation.
    const SnapshotHolder::ReadGuard fresh = holder.Acquire(1);
    EXPECT_EQ(fresh->version(), 2u);
  }
  EXPECT_EQ(holder.TryReclaim(), 0u);
  EXPECT_EQ(holder.freed_total(), 1);
}

TEST(SnapshotHolder, ConcurrentReadersNeverSeeReclaimedGeneration) {
  constexpr int kReaders = 3;
  static constexpr uint64_t kVersions = 400;
  SnapshotHolder holder(kReaders, TaggedSnapshot(1));
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&holder, &stop, t] {
      while (!stop.load(std::memory_order_acquire)) {
        const SnapshotHolder::ReadGuard guard = holder.Acquire(t);
        // Version/base-margin agreement is the torn-read detector: a
        // freed-too-early snapshot trips ASan/TSan, a torn one trips
        // this.
        ASSERT_EQ(guard->forest().base_margin(),
                  static_cast<double>(guard->version()));
        ASSERT_GE(guard->version(), 1u);
        ASSERT_LE(guard->version(), kVersions);
      }
    });
  }
  for (uint64_t v = 2; v <= kVersions; ++v) {
    holder.Publish(TaggedSnapshot(v));
    if (v % 64 == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  // Once every reader exited, everything retired must be reclaimable.
  EXPECT_EQ(holder.TryReclaim(), 0u);
  EXPECT_EQ(holder.retired_total(), static_cast<int64_t>(kVersions - 1));
  EXPECT_EQ(holder.freed_total(), static_cast<int64_t>(kVersions - 1));
}

TEST(AdmissionQueue, FullBlockSealsInline) {
  AdmissionQueue queue(/*block_rows=*/4, /*num_features=*/2);
  std::vector<ServeTicket> tickets;
  for (int i = 0; i < 8; ++i) {
    const float row[2] = {static_cast<float>(i), static_cast<float>(-i)};
    tickets.push_back(queue.Submit(row, nullptr));
  }
  const AdmissionCounters counters = queue.GetCounters();
  EXPECT_EQ(counters.submitted, 8);
  EXPECT_EQ(counters.batches, 2);
  EXPECT_EQ(counters.full_seals, 2);
  EXPECT_EQ(counters.deadline_seals, 0);

  for (int b = 0; b < 2; ++b) {
    std::shared_ptr<RequestBatch> batch;
    ASSERT_TRUE(queue.WaitPop(&batch));
    EXPECT_EQ(batch->seq(), static_cast<uint64_t>(b));
    EXPECT_EQ(batch->size(), 4u);
    EXPECT_FALSE(batch->deadline_seal);
    // Rows landed in submission order with their payload intact.
    for (uint32_t i = 0; i < batch->size(); ++i) {
      EXPECT_EQ(batch->row(i)[0], static_cast<float>(b * 4 + i));
      batch->margins()[i] = batch->row(i)[0] * 10.0;
    }
    batch->MarkDone();
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(tickets[static_cast<size_t>(i)].Wait(), i * 10.0);
  }
}

TEST(AdmissionQueue, DeadlineAndForcedSeals) {
  AdmissionQueue queue(/*block_rows=*/4, /*num_features=*/1);
  const float row = 7.0f;
  ServeTicket ticket = queue.Submit(&row, nullptr);
  ASSERT_TRUE(ticket.valid());

  const int64_t deadline_ns = 1000 * 1000;
  // Before the deadline: nothing seals, the expiry comes back.
  const int64_t expiry =
      queue.SealExpired(NowNs(), deadline_ns, /*force=*/false);
  EXPECT_GT(expiry, 0);
  EXPECT_EQ(queue.GetCounters().batches, 0);
  // At the deadline: the partial batch seals, flagged as deadline-sealed.
  EXPECT_EQ(queue.SealExpired(expiry, deadline_ns, /*force=*/false), -1);
  EXPECT_EQ(queue.GetCounters().deadline_seals, 1);

  std::shared_ptr<RequestBatch> batch;
  ASSERT_TRUE(queue.WaitPop(&batch));
  EXPECT_EQ(batch->size(), 1u);
  EXPECT_TRUE(batch->deadline_seal);
  batch->MarkDone();

  // Forced seal (shutdown/Flush path) with a fresh partial batch.
  (void)queue.Submit(&row, nullptr);
  EXPECT_EQ(queue.SealExpired(NowNs(), deadline_ns, /*force=*/true), -1);
  EXPECT_EQ(queue.GetCounters().forced_seals, 1);
  ASSERT_TRUE(queue.WaitPop(&batch));
  EXPECT_FALSE(batch->deadline_seal);
  batch->MarkDone();

  // Stop drains: WaitPop keeps handing out queued batches, then reports
  // shutdown.
  queue.Stop();
  EXPECT_FALSE(queue.WaitPop(&batch));
}

TEST(ModelServer, ServedMarginsBitIdenticalToBatchPredictor) {
  const Dataset data = MakeDataset(700, 12, 0.8, /*seed=*/11);
  GbdtTrainer trainer(Params(20, 8));
  const GbdtModel model = trainer.Train(data);
  const std::vector<double> expect = model.PredictMargins(data);

  ServeConfig config;
  config.num_threads = 2;
  ModelServer server(model, config);
  const uint32_t width = server.row_width();
  const std::vector<float> rows = DenseRows(data, width);

  std::vector<ServeTicket> tickets(data.num_rows());
  for (uint32_t r = 0; r < data.num_rows(); ++r) {
    tickets[r] =
        server.Submit(rows.data() + static_cast<size_t>(r) * width, width);
  }
  server.Flush();
  for (uint32_t r = 0; r < data.num_rows(); ++r) {
    const double served = tickets[r].Wait();
    ASSERT_EQ(served, expect[r]) << "row " << r;
  }
  const ServeStats stats = server.Stats();
  EXPECT_EQ(stats.rows_submitted, static_cast<int64_t>(data.num_rows()));
  EXPECT_EQ(stats.rows_served, static_cast<int64_t>(data.num_rows()));
  // 700 rows need >= ceil(700/256) = 3 batches; how they sealed (full vs
  // deadline) depends on how fast the submit loop ran, so only the total
  // is asserted.
  EXPECT_GE(stats.batches_served, 3);
  EXPECT_EQ(stats.full_seals + stats.deadline_seals + stats.forced_seals,
            stats.batches_served);
  EXPECT_EQ(stats.model_version, 1u);
  server.Shutdown();
}

TEST(ModelServer, DeadlineFlushServesPartialBatchWithoutFlushCall) {
  const Dataset data = MakeDataset(10, 6, 0.9, /*seed=*/5);
  GbdtTrainer trainer(Params(5, 4));
  const GbdtModel model = trainer.Train(data);
  const std::vector<double> expect = model.PredictMargins(data);

  ServeConfig config;
  config.num_threads = 1;
  config.flush_deadline_ns = 200 * 1000;
  ModelServer server(model, config);
  const uint32_t width = server.row_width();
  const std::vector<float> rows = DenseRows(data, width);

  // 10 rows never fill a 256-row block; only the flusher can seal them.
  std::vector<ServeTicket> tickets(data.num_rows());
  for (uint32_t r = 0; r < data.num_rows(); ++r) {
    tickets[r] =
        server.Submit(rows.data() + static_cast<size_t>(r) * width, width);
  }
  for (uint32_t r = 0; r < data.num_rows(); ++r) {
    EXPECT_EQ(tickets[r].Wait(), expect[r]);
  }
  const ServeStats stats = server.Stats();
  EXPECT_GE(stats.deadline_seals, 1);
  EXPECT_EQ(stats.full_seals, 0);
  server.Shutdown();
}

TEST(ModelServer, CallbacksFireInGlobalSubmissionOrder) {
  const Dataset data = MakeDataset(64, 6, 0.9, /*seed=*/7);
  GbdtTrainer trainer(Params(4, 4));
  const GbdtModel model = trainer.Train(data);
  const std::vector<double> expect = model.PredictMargins(data);

  ServeConfig config;
  config.num_threads = 2;
  config.block_rows = 16;  // several batches, ordering crosses seals
  ModelServer server(model, config);
  const uint32_t width = server.row_width();
  const std::vector<float> rows = DenseRows(data, width);

  constexpr int kRounds = 5;
  const int total = kRounds * static_cast<int>(data.num_rows());
  std::vector<int> order;
  order.reserve(static_cast<size_t>(total));
  std::mutex order_mutex;
  std::condition_variable order_cv;
  int submitted = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (uint32_t r = 0; r < data.num_rows(); ++r) {
      const int id = submitted++;
      const double want = expect[r];
      server.SubmitWithCallback(
          rows.data() + static_cast<size_t>(r) * width, width,
          [id, want, &order, &order_mutex, &order_cv](double margin) {
            EXPECT_EQ(margin, want);
            std::lock_guard<std::mutex> lock(order_mutex);
            order.push_back(id);
            order_cv.notify_one();
          });
    }
    server.Flush();
  }
  std::unique_lock<std::mutex> lock(order_mutex);
  order_cv.wait(lock, [&] {
    return order.size() == static_cast<size_t>(total);
  });
  // Single-threaded submission: global callback order must be exactly
  // admission order, across every batch boundary.
  for (int i = 0; i < total; ++i) {
    ASSERT_EQ(order[static_cast<size_t>(i)], i);
  }
  server.Shutdown();
}

TEST(ModelServer, HotSwapUnderLoadServesExactlyOneGeneration) {
  const Dataset data = MakeDataset(200, 10, 0.8, /*seed=*/23);
  GbdtTrainer trainer_a(Params(12, 8));
  const GbdtModel model_a = trainer_a.Train(data);
  GbdtTrainer trainer_b(Params(6, 4));
  const GbdtModel model_b = trainer_b.Train(data);
  const std::vector<double> expect_a = model_a.PredictMargins(data);
  const std::vector<double> expect_b = model_b.PredictMargins(data);

  ServeConfig config;
  config.num_threads = 2;
  config.block_rows = 32;
  config.flush_deadline_ns = 50 * 1000;
  ModelServer server(model_a, config);
  const uint32_t width = server.row_width();
  const std::vector<float> rows = DenseRows(data, width);

  // Submitters hammer single-row requests while a reloader flips between
  // the two models. Every result must match the generation that served
  // its batch, bit for bit — odd versions are A, even are B.
  constexpr int kSubmitters = 2;
  constexpr int kPerThread = 600;
  std::atomic<bool> stop_reloader{false};
  std::thread reloader([&] {
    int flips = 0;
    while (!stop_reloader.load(std::memory_order_acquire)) {
      server.Reload(++flips % 2 == 1 ? model_b : model_a);
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> submitters;
  std::atomic<int64_t> checked{0};
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const uint32_t r =
            static_cast<uint32_t>((t * 131 + i * 7) % data.num_rows());
        ServeTicket ticket = server.Submit(
            rows.data() + static_cast<size_t>(r) * width, width);
        const double margin = ticket.Wait();
        const uint64_t version = ticket.batch().served_version;
        const double want =
            version % 2 == 1 ? expect_a[r] : expect_b[r];
        ASSERT_EQ(margin, want)
            << "row " << r << " served by version " << version;
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& s : submitters) s.join();
  stop_reloader.store(true, std::memory_order_release);
  reloader.join();

  const ServeStats stats = server.Stats();
  EXPECT_EQ(checked.load(), kSubmitters * kPerThread);
  EXPECT_GE(stats.reloads, 1);
  server.Shutdown();
  // After shutdown every worker released its pin: retired == freed.
  const ServeStats after = server.Stats();
  EXPECT_EQ(after.snapshots_retired, after.snapshots_freed);
}

TEST(ModelServer, ReloadBumpsVersionAndKeepsServing) {
  const Dataset data = MakeDataset(40, 8, 0.9, /*seed=*/3);
  GbdtTrainer trainer(Params(6, 4));
  const GbdtModel model = trainer.Train(data);
  const std::vector<double> expect = model.PredictMargins(data);

  ModelServer server(model, ServeConfig{});
  EXPECT_EQ(server.ModelVersion(), 1u);
  server.Reload(model);
  server.Reload(model);
  EXPECT_EQ(server.ModelVersion(), 3u);

  const uint32_t width = server.row_width();
  const std::vector<float> rows = DenseRows(data, width);
  ServeTicket ticket = server.Submit(rows.data(), width);
  server.Flush();
  EXPECT_EQ(ticket.Wait(), expect[0]);
  EXPECT_EQ(ticket.batch().served_version, 3u);
  server.Shutdown();
}

}  // namespace
}  // namespace harp
