// Tests for evaluation metrics, including AUC vs an O(n^2) reference.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/metrics.h"
#include "core/params.h"

namespace harp {
namespace {

// Brute-force AUC: P(score_pos > score_neg) + 0.5 P(tie).
double AucReference(const std::vector<float>& labels,
                    const std::vector<double>& scores) {
  double wins = 0.0;
  double pairs = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] <= 0.5f) continue;
    for (size_t j = 0; j < labels.size(); ++j) {
      if (labels[j] > 0.5f) continue;
      pairs += 1.0;
      if (scores[i] > scores[j]) {
        wins += 1.0;
      } else if (scores[i] == scores[j]) {
        wins += 0.5;
      }
    }
  }
  return pairs == 0.0 ? 0.5 : wins / pairs;
}

TEST(Auc, PerfectRanking) {
  EXPECT_DOUBLE_EQ(Auc({0, 0, 1, 1}, {0.1, 0.2, 0.8, 0.9}), 1.0);
}

TEST(Auc, ReversedRanking) {
  EXPECT_DOUBLE_EQ(Auc({0, 0, 1, 1}, {0.9, 0.8, 0.2, 0.1}), 0.0);
}

TEST(Auc, AllTiedIsHalf) {
  EXPECT_DOUBLE_EQ(Auc({0, 1, 0, 1}, {0.5, 0.5, 0.5, 0.5}), 0.5);
}

TEST(Auc, SingleClassIsHalf) {
  EXPECT_DOUBLE_EQ(Auc({1, 1, 1}, {0.1, 0.2, 0.3}), 0.5);
  EXPECT_DOUBLE_EQ(Auc({0, 0}, {0.1, 0.2}), 0.5);
}

TEST(Auc, HandCheckedMixedCase) {
  // Positives at 0.8 and 0.3; negatives at 0.5 and 0.3.
  // Pairs: (0.8>0.5)=1 (0.8>0.3)=1 (0.3<0.5)=0 (0.3==0.3)=0.5 -> 2.5/4.
  EXPECT_DOUBLE_EQ(Auc({1, 1, 0, 0}, {0.8, 0.3, 0.5, 0.3}), 0.625);
}

TEST(Auc, InvariantToMonotoneTransform) {
  const std::vector<float> labels{0, 1, 0, 1, 1, 0, 0, 1};
  std::vector<double> margins{-2.0, 0.5, -0.3, 1.7, 0.1, 0.0, -1.1, 2.2};
  std::vector<double> probs(margins.size());
  for (size_t i = 0; i < margins.size(); ++i) {
    probs[i] = 1.0 / (1.0 + std::exp(-margins[i]));
  }
  EXPECT_DOUBLE_EQ(Auc(labels, margins), Auc(labels, probs));
}

TEST(Auc, MatchesBruteForceOnRandomData) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 50 + rng.NextBelow(100);
    std::vector<float> labels(n);
    std::vector<double> scores(n);
    for (size_t i = 0; i < n; ++i) {
      labels[i] = rng.Bernoulli(0.4) ? 1.0f : 0.0f;
      // Quantized scores to force plenty of ties.
      scores[i] = std::round(rng.NextDouble() * 8.0) / 8.0;
    }
    EXPECT_NEAR(Auc(labels, scores), AucReference(labels, scores), 1e-12)
        << "trial " << trial;
  }
}

TEST(LogLossTest, KnownValues) {
  // Perfectly confident and correct -> near 0.
  EXPECT_NEAR(LogLoss({1, 0}, {1.0 - 1e-15, 1e-15}), 0.0, 1e-9);
  // p = 0.5 everywhere -> ln 2.
  EXPECT_NEAR(LogLoss({1, 0, 1}, {0.5, 0.5, 0.5}), std::log(2.0), 1e-12);
  // Hand-computed single row.
  EXPECT_NEAR(LogLoss({1}, {0.25}), -std::log(0.25), 1e-12);
}

TEST(LogLossTest, ClampsExtremeProbabilities) {
  // p=0 for a positive would be +inf; clamping keeps it finite.
  EXPECT_TRUE(std::isfinite(LogLoss({1}, {0.0})));
  EXPECT_TRUE(std::isfinite(LogLoss({0}, {1.0})));
}

TEST(RmseTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Rmse({1, 2, 3}, {1.0, 2.0, 3.0}), 0.0);
  EXPECT_NEAR(Rmse({0, 0}, {3.0, 4.0}), std::sqrt(12.5), 1e-12);
}

TEST(ErrorRateTest, ThresholdAtHalf) {
  EXPECT_DOUBLE_EQ(ErrorRate({1, 0, 1, 0}, {0.9, 0.1, 0.2, 0.8}), 0.5);
  EXPECT_DOUBLE_EQ(ErrorRate({1, 0}, {0.6, 0.4}), 0.0);
  // 0.5 counts as a positive prediction.
  EXPECT_DOUBLE_EQ(ErrorRate({0}, {0.5}), 1.0);
}

// ---------- pinball ----------

TEST(PinballTest, KnownValues) {
  // Exact fit -> 0 at any alpha.
  EXPECT_DOUBLE_EQ(PinballLoss({1, 2}, {1.0, 2.0}, 0.3), 0.0);
  // Underprediction (y > p) costs alpha per unit, overprediction 1-alpha.
  EXPECT_DOUBLE_EQ(PinballLoss({3}, {1.0}, 0.9), 0.9 * 2.0);
  EXPECT_DOUBLE_EQ(PinballLoss({1}, {3.0}, 0.9), 0.1 * 2.0);
  // Mixed, hand-summed: (0.5*1 + 0.5*2) / 2.
  EXPECT_DOUBLE_EQ(PinballLoss({2, 0}, {1.0, 2.0}, 0.5), 0.75);
}

TEST(PinballTest, MinimizedAtTheAlphaQuantile) {
  // For labels {0..9} and a constant prediction, the pinball loss is
  // minimized when the prediction sits at the alpha-quantile.
  std::vector<float> labels(10);
  for (int i = 0; i < 10; ++i) labels[i] = static_cast<float>(i);
  auto loss_at = [&](double pred, double alpha) {
    return PinballLoss(labels, std::vector<double>(10, pred), alpha);
  };
  EXPECT_LT(loss_at(8.0, 0.9), loss_at(4.5, 0.9));
  EXPECT_LT(loss_at(8.0, 0.9), loss_at(9.5, 0.9));
  EXPECT_LT(loss_at(1.0, 0.1), loss_at(4.5, 0.1));
}

// ---------- Poisson deviance ----------

TEST(PoissonDevianceTest, KnownValues) {
  // Perfect rate predictions -> 0 (the y log(y/mu) and mu - y terms
  // cancel exactly).
  EXPECT_NEAR(MeanPoissonDeviance({1, 2, 3}, {1.0, 2.0, 3.0}), 0.0, 1e-12);
  // y = 0: deviance reduces to 2 mu.
  EXPECT_NEAR(MeanPoissonDeviance({0}, {1.5}), 3.0, 1e-12);
  // Single hand-computed row: 2 (2 log(2/1) - 2 + 1).
  EXPECT_NEAR(MeanPoissonDeviance({2}, {1.0}),
              2.0 * (2.0 * std::log(2.0) - 1.0), 1e-12);
}

TEST(PoissonDevianceTest, FiniteForZeroRate) {
  EXPECT_TRUE(std::isfinite(MeanPoissonDeviance({2}, {0.0})));
  EXPECT_TRUE(std::isfinite(MeanPoissonDeviance({0}, {0.0})));
}

// ---------- NDCG ----------

TEST(NdcgTest, PerfectAndInvertedSingleQuery) {
  const std::vector<uint32_t> one_query{0, 3};
  // Perfect ordering -> 1.
  EXPECT_NEAR(NdcgAtK({2, 1, 0}, {3.0, 2.0, 1.0}, one_query, 10), 1.0,
              1e-12);
  // Hand-computed inverted ordering: relevances {2,1,0} ranked worst-
  // first. DCG = 0*1 + 1/log2(3) + 3/log2(4); ideal = 3*1 + 1/log2(3).
  const double dcg = 1.0 / std::log2(3.0) + 3.0 / 2.0;
  const double ideal = 3.0 + 1.0 / std::log2(3.0);
  EXPECT_NEAR(NdcgAtK({2, 1, 0}, {1.0, 2.0, 3.0}, one_query, 10),
              dcg / ideal, 1e-12);
}

TEST(NdcgTest, CutoffTruncatesGains) {
  const std::vector<uint32_t> one_query{0, 3};
  // k = 1 only sees the top document. Top doc has rel 0 -> NDCG@1 = 0.
  EXPECT_NEAR(NdcgAtK({2, 1, 0}, {1.0, 2.0, 3.0}, one_query, 1), 0.0,
              1e-12);
  // Same ranking at k = 2: DCG@2 = 1/log2(3); ideal@2 = 3 + 1/log2(3).
  const double expect =
      (1.0 / std::log2(3.0)) / (3.0 + 1.0 / std::log2(3.0));
  EXPECT_NEAR(NdcgAtK({2, 1, 0}, {1.0, 2.0, 3.0}, one_query, 2), expect,
              1e-12);
}

TEST(NdcgTest, TiesBreakByRowIndex) {
  // Equal scores: row order is the ranking (matches the objective's
  // deterministic sort), so putting the relevant doc first is perfect.
  const std::vector<uint32_t> one_query{0, 2};
  EXPECT_NEAR(NdcgAtK({1, 0}, {0.5, 0.5}, one_query, 10), 1.0, 1e-12);
  const double inverted = (1.0 / std::log2(3.0)) / 1.0;
  EXPECT_NEAR(NdcgAtK({0, 1}, {0.5, 0.5}, one_query, 10), inverted, 1e-12);
}

TEST(NdcgTest, AveragesAcrossQueriesAndSkipsAllZeroQueries) {
  // Query 1 perfect (ndcg 1), query 2 inverted binary (1/log2(3)),
  // query 3 all-zero relevance (skipped entirely).
  const std::vector<uint32_t> groups{0, 2, 4, 6};
  const std::vector<float> labels{1, 0, 0, 1, 0, 0};
  const std::vector<double> scores{2.0, 1.0, 2.0, 1.0, 2.0, 1.0};
  const double expect = (1.0 + 1.0 / std::log2(3.0)) / 2.0;
  EXPECT_NEAR(NdcgAtK(labels, scores, groups, 10), expect, 1e-12);
  // Every query skipped: any ranking is vacuously ideal.
  EXPECT_DOUBLE_EQ(
      NdcgAtK({0, 0}, {1.0, 2.0}, std::vector<uint32_t>{0, 2}, 10), 1.0);
}

// ---------- Metric registry ----------

TEST(MetricRegistry, NamesDirectionsAndGroupNeeds) {
  struct Case {
    const char* name;
    bool higher;
    bool groups;
  };
  for (const Case& c : std::initializer_list<Case>{
           {"logloss", false, false},
           {"rmse", false, false},
           {"auc", true, false},
           {"error", false, false},
           {"pinball", false, false},
           {"poisson-deviance", false, false},
           {"ndcg", true, true}}) {
    const auto metric = Metric::Create(c.name);
    EXPECT_EQ(metric->higher_is_better(), c.higher) << c.name;
    EXPECT_EQ(metric->needs_groups(), c.groups) << c.name;
  }
}

TEST(MetricRegistry, NdcgAtKParsing) {
  const auto m3 = Metric::Create("ndcg@3");
  EXPECT_EQ(m3->name(), "ndcg@3");
  EXPECT_TRUE(m3->higher_is_better());
  EXPECT_TRUE(m3->needs_groups());
  // Bare "ndcg" takes the cutoff from the config.
  MetricConfig config;
  config.ndcg_k = 7;
  EXPECT_EQ(Metric::Create("ndcg", config)->name(), "ndcg@7");
  // The @k in the name wins over the config.
  EXPECT_EQ(Metric::Create("ndcg@2", config)->name(), "ndcg@2");
}

TEST(MetricRegistry, EvaluateRoutesToKernels) {
  const std::vector<float> labels{1, 0};
  const std::vector<double> preds{0.8, 0.3};
  EXPECT_DOUBLE_EQ(Metric::Create("auc")->Evaluate(labels, preds, nullptr),
                   Auc(labels, preds));
  EXPECT_DOUBLE_EQ(
      Metric::Create("logloss")->Evaluate(labels, preds, nullptr),
      LogLoss(labels, preds));
  MetricConfig config;
  config.quantile_alpha = 0.8;
  EXPECT_DOUBLE_EQ(
      Metric::Create("pinball", config)->Evaluate(labels, preds, nullptr),
      PinballLoss(labels, preds, 0.8));
  const std::vector<uint32_t> groups{0, 2};
  EXPECT_DOUBLE_EQ(
      Metric::Create("ndcg@5")->Evaluate(labels, preds, &groups),
      NdcgAtK(labels, preds, groups, 5));
}

TEST(MetricRegistry, DefaultNamesPerObjective) {
  EXPECT_EQ(Metric::DefaultName(ObjectiveKind::kLogistic), "logloss");
  EXPECT_EQ(Metric::DefaultName(ObjectiveKind::kSquaredError), "rmse");
  EXPECT_EQ(Metric::DefaultName(ObjectiveKind::kQuantile), "pinball");
  EXPECT_EQ(Metric::DefaultName(ObjectiveKind::kPoisson),
            "poisson-deviance");
  MetricConfig config;
  config.ndcg_k = 4;
  EXPECT_EQ(Metric::DefaultName(ObjectiveKind::kLambdaRank, config),
            "ndcg@4");
}

TEST(MetricRegistryDeath, UnknownNameRejected) {
  EXPECT_DEATH(Metric::Create("nope"), "CHECK");
  EXPECT_DEATH(Metric::Create("ndcg@"), "CHECK");
  EXPECT_DEATH(Metric::Create("ndcg@x"), "CHECK");
}

}  // namespace
}  // namespace harp
