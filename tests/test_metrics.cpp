// Tests for evaluation metrics, including AUC vs an O(n^2) reference.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/metrics.h"

namespace harp {
namespace {

// Brute-force AUC: P(score_pos > score_neg) + 0.5 P(tie).
double AucReference(const std::vector<float>& labels,
                    const std::vector<double>& scores) {
  double wins = 0.0;
  double pairs = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] <= 0.5f) continue;
    for (size_t j = 0; j < labels.size(); ++j) {
      if (labels[j] > 0.5f) continue;
      pairs += 1.0;
      if (scores[i] > scores[j]) {
        wins += 1.0;
      } else if (scores[i] == scores[j]) {
        wins += 0.5;
      }
    }
  }
  return pairs == 0.0 ? 0.5 : wins / pairs;
}

TEST(Auc, PerfectRanking) {
  EXPECT_DOUBLE_EQ(Auc({0, 0, 1, 1}, {0.1, 0.2, 0.8, 0.9}), 1.0);
}

TEST(Auc, ReversedRanking) {
  EXPECT_DOUBLE_EQ(Auc({0, 0, 1, 1}, {0.9, 0.8, 0.2, 0.1}), 0.0);
}

TEST(Auc, AllTiedIsHalf) {
  EXPECT_DOUBLE_EQ(Auc({0, 1, 0, 1}, {0.5, 0.5, 0.5, 0.5}), 0.5);
}

TEST(Auc, SingleClassIsHalf) {
  EXPECT_DOUBLE_EQ(Auc({1, 1, 1}, {0.1, 0.2, 0.3}), 0.5);
  EXPECT_DOUBLE_EQ(Auc({0, 0}, {0.1, 0.2}), 0.5);
}

TEST(Auc, HandCheckedMixedCase) {
  // Positives at 0.8 and 0.3; negatives at 0.5 and 0.3.
  // Pairs: (0.8>0.5)=1 (0.8>0.3)=1 (0.3<0.5)=0 (0.3==0.3)=0.5 -> 2.5/4.
  EXPECT_DOUBLE_EQ(Auc({1, 1, 0, 0}, {0.8, 0.3, 0.5, 0.3}), 0.625);
}

TEST(Auc, InvariantToMonotoneTransform) {
  const std::vector<float> labels{0, 1, 0, 1, 1, 0, 0, 1};
  std::vector<double> margins{-2.0, 0.5, -0.3, 1.7, 0.1, 0.0, -1.1, 2.2};
  std::vector<double> probs(margins.size());
  for (size_t i = 0; i < margins.size(); ++i) {
    probs[i] = 1.0 / (1.0 + std::exp(-margins[i]));
  }
  EXPECT_DOUBLE_EQ(Auc(labels, margins), Auc(labels, probs));
}

TEST(Auc, MatchesBruteForceOnRandomData) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 50 + rng.NextBelow(100);
    std::vector<float> labels(n);
    std::vector<double> scores(n);
    for (size_t i = 0; i < n; ++i) {
      labels[i] = rng.Bernoulli(0.4) ? 1.0f : 0.0f;
      // Quantized scores to force plenty of ties.
      scores[i] = std::round(rng.NextDouble() * 8.0) / 8.0;
    }
    EXPECT_NEAR(Auc(labels, scores), AucReference(labels, scores), 1e-12)
        << "trial " << trial;
  }
}

TEST(LogLossTest, KnownValues) {
  // Perfectly confident and correct -> near 0.
  EXPECT_NEAR(LogLoss({1, 0}, {1.0 - 1e-15, 1e-15}), 0.0, 1e-9);
  // p = 0.5 everywhere -> ln 2.
  EXPECT_NEAR(LogLoss({1, 0, 1}, {0.5, 0.5, 0.5}), std::log(2.0), 1e-12);
  // Hand-computed single row.
  EXPECT_NEAR(LogLoss({1}, {0.25}), -std::log(0.25), 1e-12);
}

TEST(LogLossTest, ClampsExtremeProbabilities) {
  // p=0 for a positive would be +inf; clamping keeps it finite.
  EXPECT_TRUE(std::isfinite(LogLoss({1}, {0.0})));
  EXPECT_TRUE(std::isfinite(LogLoss({0}, {1.0})));
}

TEST(RmseTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Rmse({1, 2, 3}, {1.0, 2.0, 3.0}), 0.0);
  EXPECT_NEAR(Rmse({0, 0}, {3.0, 4.0}), std::sqrt(12.5), 1e-12);
}

TEST(ErrorRateTest, ThresholdAtHalf) {
  EXPECT_DOUBLE_EQ(ErrorRate({1, 0, 1, 0}, {0.9, 0.1, 0.2, 0.8}), 0.5);
  EXPECT_DOUBLE_EQ(ErrorRate({1, 0}, {0.6, 0.4}), 0.0);
  // 0.5 counts as a positive prediction.
  EXPECT_DOUBLE_EQ(ErrorRate({0}, {0.5}), 1.0);
}

}  // namespace
}  // namespace harp
