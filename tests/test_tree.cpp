// Tests for RegTree: growth mutations, prediction paths, validity checks.
#include <gtest/gtest.h>

#include "core/tree.h"
#include "test_util.h"

namespace harp {
namespace {

SplitInfo MakeSplit(uint32_t feature, uint32_t bin, bool default_left,
                    GHPair left, GHPair right) {
  SplitInfo s;
  s.gain = 1.0;
  s.feature = feature;
  s.bin = bin;
  s.default_left = default_left;
  s.left_sum = left;
  s.right_sum = right;
  return s;
}

TEST(RegTree, StartsAsSingleLeaf) {
  RegTree tree;
  EXPECT_EQ(tree.num_nodes(), 1);
  EXPECT_EQ(tree.NumLeaves(), 1);
  EXPECT_TRUE(tree.node(0).IsLeaf());
  EXPECT_TRUE(tree.CheckValid());
}

TEST(RegTree, ApplySplitCreatesLinkedChildren) {
  RegTree tree;
  const auto [l, r] =
      tree.ApplySplit(0, MakeSplit(2, 3, true, {1, 1}, {2, 2}), 0.5f);
  EXPECT_EQ(l, 1);
  EXPECT_EQ(r, 2);
  EXPECT_EQ(tree.num_nodes(), 3);
  EXPECT_EQ(tree.NumLeaves(), 2);
  EXPECT_FALSE(tree.node(0).IsLeaf());
  EXPECT_EQ(tree.node(0).split_feature, 2u);
  EXPECT_EQ(tree.node(0).split_bin, 3u);
  EXPECT_TRUE(tree.node(0).default_left);
  EXPECT_EQ(tree.node(l).parent, 0);
  EXPECT_EQ(tree.node(r).parent, 0);
  EXPECT_EQ(tree.node(l).depth, 1);
  EXPECT_EQ(tree.node(l).sum, (GHPair{1, 1}));
  EXPECT_EQ(tree.node(r).sum, (GHPair{2, 2}));
  EXPECT_TRUE(tree.CheckValid());
  EXPECT_EQ(tree.MaxDepth(), 1);
}

TEST(RegTree, PredictBinnedFollowsSplits) {
  RegTree tree;
  tree.ApplySplit(0, MakeSplit(0, 2, false, {}, {}), 2.0f);
  tree.mutable_node(1).leaf_value = -1.0;
  tree.mutable_node(2).leaf_value = +1.0;

  const uint8_t low[] = {1};
  const uint8_t edge[] = {2};
  const uint8_t high[] = {3};
  const uint8_t missing[] = {0};
  EXPECT_DOUBLE_EQ(tree.PredictBinned(low), -1.0);
  EXPECT_DOUBLE_EQ(tree.PredictBinned(edge), -1.0);  // bin <= split_bin
  EXPECT_DOUBLE_EQ(tree.PredictBinned(high), 1.0);
  EXPECT_DOUBLE_EQ(tree.PredictBinned(missing), 1.0);  // default right
}

TEST(RegTree, MissingFollowsDefaultLeft) {
  RegTree tree;
  tree.ApplySplit(0, MakeSplit(0, 1, true, {}, {}), 0.0f);
  tree.mutable_node(1).leaf_value = -5.0;
  tree.mutable_node(2).leaf_value = +5.0;
  const uint8_t missing[] = {0};
  EXPECT_DOUBLE_EQ(tree.PredictBinned(missing), -5.0);
}

TEST(RegTree, PredictRawUsesSplitValueAndMissing) {
  RegTree tree;
  tree.ApplySplit(0, MakeSplit(1, 1, false, {}, {}), 10.0f);
  tree.mutable_node(1).leaf_value = -1.0;
  tree.mutable_node(2).leaf_value = 1.0;
  const Dataset ds = Dataset::FromDense(
      3, 2,
      {0.0f, 9.0f,
       0.0f, 11.0f,
       0.0f, kMissingValue},
      {0, 0, 0});
  EXPECT_DOUBLE_EQ(tree.PredictRaw(ds, 0), -1.0);  // 9 <= 10
  EXPECT_DOUBLE_EQ(tree.PredictRaw(ds, 1), 1.0);   // 11 > 10
  EXPECT_DOUBLE_EQ(tree.PredictRaw(ds, 2), 1.0);   // missing -> right
}

TEST(RegTree, TwoLevelPrediction) {
  RegTree tree;
  tree.ApplySplit(0, MakeSplit(0, 1, false, {}, {}), 1.0f);
  tree.ApplySplit(1, MakeSplit(1, 2, false, {}, {}), 2.0f);
  tree.mutable_node(2).leaf_value = 10.0;  // right of root
  tree.mutable_node(3).leaf_value = 20.0;  // left-left
  tree.mutable_node(4).leaf_value = 30.0;  // left-right
  EXPECT_EQ(tree.NumLeaves(), 3);
  EXPECT_EQ(tree.MaxDepth(), 2);

  const uint8_t ll[] = {1, 1};
  const uint8_t lr[] = {1, 3};
  const uint8_t right[] = {2, 1};
  EXPECT_DOUBLE_EQ(tree.PredictBinned(ll), 20.0);
  EXPECT_DOUBLE_EQ(tree.PredictBinned(lr), 30.0);
  EXPECT_DOUBLE_EQ(tree.PredictBinned(right), 10.0);
}

TEST(RegTree, BinnedAndRawPredictionsAgreeOnRealCuts) {
  // Property: for a tree whose split_values come from the actual cut
  // boundaries, predicting from raw values must equal predicting from the
  // binned row — for every row including missing entries.
  const Dataset ds = harp::testing::MakeDataset(400, 5, 0.8, 101);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16));

  RegTree tree;
  auto split_at = [&](int node, uint32_t feature, uint32_t bin,
                      bool default_left) {
    tree.ApplySplit(node, MakeSplit(feature, bin, default_left, {}, {}),
                    matrix.cuts().CutFor(feature, bin));
  };
  split_at(0, 0, std::max(1u, matrix.NumBins(0) / 2), false);
  split_at(1, 2, std::max(1u, matrix.NumBins(2) / 3), true);
  split_at(2, 4, std::max(1u, matrix.NumBins(4) / 2), false);
  int leaf_tag = 0;
  for (int i = 0; i < tree.num_nodes(); ++i) {
    if (tree.node(i).IsLeaf()) {
      tree.mutable_node(i).leaf_value = ++leaf_tag;
    }
  }

  for (uint32_t r = 0; r < ds.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(tree.PredictBinned(matrix.RowBins(r)),
                     tree.PredictRaw(ds, r))
        << "row " << r;
  }
}

TEST(RegTree, CheckValidCatchesCorruption) {
  RegTree tree;
  tree.ApplySplit(0, MakeSplit(0, 1, false, {}, {}), 0.0f);
  EXPECT_TRUE(tree.CheckValid());
  RegTree broken = tree;
  broken.mutable_node(1).parent = 2;  // wrong parent link
  EXPECT_FALSE(broken.CheckValid());
  RegTree bad_leaf = tree;
  bad_leaf.mutable_node(2).leaf_value =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(bad_leaf.CheckValid());
  RegTree bad_bin = tree;
  bad_bin.mutable_node(0).split_bin = 0;
  EXPECT_FALSE(bad_bin.CheckValid());
}

TEST(RegTreeDeath, CannotSplitInternalNode) {
  RegTree tree;
  tree.ApplySplit(0, MakeSplit(0, 1, false, {}, {}), 0.0f);
  EXPECT_DEATH(tree.ApplySplit(0, MakeSplit(0, 1, false, {}, {}), 0.0f),
               "CHECK");
}

TEST(RegTreeDeath, SplitBinMustBePositive) {
  RegTree tree;
  EXPECT_DEATH(tree.ApplySplit(0, MakeSplit(0, 0, false, {}, {}), 0.0f),
               "CHECK");
}

}  // namespace
}  // namespace harp
