// Tests for the growth-policy priority queue (Algorithm 1's pop rules).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/grow_policy.h"

namespace harp {
namespace {

Candidate Cand(int node, int depth, double gain) {
  Candidate c;
  c.node_id = node;
  c.depth = depth;
  c.split.gain = gain;
  c.split.bin = 1;
  return c;
}

TEST(GrowQueue, LeafwisePopsSingleBestGain) {
  GrowQueue q(GrowPolicy::kLeafwise);
  q.Push(Cand(1, 1, 0.5));
  q.Push(Cand(2, 1, 2.0));
  q.Push(Cand(3, 2, 1.0));
  const auto batch = q.PopBatch(/*k=*/32, /*max_batch=*/100);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].node_id, 2);
  EXPECT_EQ(q.Size(), 2u);
}

TEST(GrowQueue, TopKPopsKBestByGain) {
  GrowQueue q(GrowPolicy::kTopK);
  q.Push(Cand(1, 1, 0.5));
  q.Push(Cand(2, 3, 2.0));
  q.Push(Cand(3, 2, 1.5));
  q.Push(Cand(4, 1, 0.1));
  const auto batch = q.PopBatch(2, 100);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].node_id, 2);
  EXPECT_EQ(batch[1].node_id, 3);
  EXPECT_EQ(q.Size(), 2u);
}

TEST(GrowQueue, TopKOneEqualsLeafwise) {
  GrowQueue topk(GrowPolicy::kTopK);
  GrowQueue leaf(GrowPolicy::kLeafwise);
  for (const auto& c : {Cand(1, 1, 0.7), Cand(2, 1, 0.9), Cand(3, 2, 0.8)}) {
    topk.Push(c);
    leaf.Push(c);
  }
  while (!leaf.Empty()) {
    const auto a = topk.PopBatch(1, 10);
    const auto b = leaf.PopBatch(1, 10);
    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(a[0].node_id, b[0].node_id);
  }
  EXPECT_TRUE(topk.Empty());
}

TEST(GrowQueue, DepthwisePopsWholeShallowestLevel) {
  GrowQueue q(GrowPolicy::kDepthwise);
  q.Push(Cand(5, 2, 9.0));  // deeper but higher gain: must wait
  q.Push(Cand(1, 1, 0.1));
  q.Push(Cand(2, 1, 0.2));
  auto batch = q.PopBatch(32, 100);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].node_id, 1);  // node-id order within a level
  EXPECT_EQ(batch[1].node_id, 2);
  batch = q.PopBatch(32, 100);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].node_id, 5);
}

TEST(GrowQueue, DepthwiseDoesNotMixLevelsEvenWithBudget) {
  GrowQueue q(GrowPolicy::kDepthwise);
  q.Push(Cand(1, 1, 1.0));
  q.Push(Cand(2, 2, 1.0));
  q.Push(Cand(3, 2, 1.0));
  const auto batch = q.PopBatch(32, 100);
  ASSERT_EQ(batch.size(), 1u);  // only level 1, despite budget for more
  EXPECT_EQ(batch[0].node_id, 1);
}

TEST(GrowQueue, MaxBatchCapsEverything) {
  for (GrowPolicy policy :
       {GrowPolicy::kDepthwise, GrowPolicy::kLeafwise, GrowPolicy::kTopK}) {
    GrowQueue q(policy);
    for (int i = 0; i < 10; ++i) q.Push(Cand(i, 1, 1.0 + i));
    const auto batch = q.PopBatch(32, 3);
    EXPECT_LE(batch.size(), 3u);
    EXPECT_FALSE(batch.empty());
  }
}

TEST(GrowQueue, ZeroBudgetPopsNothing) {
  GrowQueue q(GrowPolicy::kTopK);
  q.Push(Cand(1, 1, 1.0));
  EXPECT_TRUE(q.PopBatch(32, 0).empty());
  EXPECT_EQ(q.Size(), 1u);
}

TEST(GrowQueue, EmptyPops) {
  GrowQueue q(GrowPolicy::kLeafwise);
  EXPECT_TRUE(q.Empty());
  EXPECT_TRUE(q.PopBatch(1, 10).empty());
}

TEST(GrowQueue, GainTiesBrokenByNodeId) {
  GrowQueue q(GrowPolicy::kTopK);
  q.Push(Cand(7, 1, 1.0));
  q.Push(Cand(3, 1, 1.0));
  q.Push(Cand(5, 1, 1.0));
  const auto batch = q.PopBatch(3, 10);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].node_id, 3);
  EXPECT_EQ(batch[1].node_id, 5);
  EXPECT_EQ(batch[2].node_id, 7);
}

TEST(GrowQueue, ManyPushesPopInSortedGainOrder) {
  GrowQueue q(GrowPolicy::kTopK);
  std::vector<double> gains;
  for (int i = 0; i < 200; ++i) {
    const double gain = static_cast<double>((i * 7919) % 1000);
    gains.push_back(gain);
    q.Push(Cand(i, 1, gain));
  }
  std::sort(gains.rbegin(), gains.rend());
  size_t idx = 0;
  while (!q.Empty()) {
    for (const Candidate& c : q.PopBatch(16, 1000)) {
      EXPECT_DOUBLE_EQ(c.split.gain, gains[idx++]);
    }
  }
  EXPECT_EQ(idx, gains.size());
}

}  // namespace
}  // namespace harp
