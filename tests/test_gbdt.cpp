// End-to-end boosting tests: learning works across every mode/policy, the
// incremental margins equal full model re-prediction, callbacks fire,
// training is deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "common/stats.h"
#include "core/gbdt.h"
#include "core/metrics.h"
#include "core/objective.h"
#include "data/synthetic.h"
#include "test_util.h"

namespace harp {
namespace {

Dataset LearnableData(uint32_t rows, uint64_t seed = 301) {
  SyntheticSpec spec;
  spec.rows = rows;
  spec.features = 12;
  spec.density = 0.9;
  spec.mean_distinct = 40;
  spec.active_features = 6;
  spec.margin_scale = 3.0;  // quite separable
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

TrainParams FastParams() {
  TrainParams p;
  p.num_trees = 15;
  p.tree_size = 4;
  p.grow_policy = GrowPolicy::kTopK;
  p.topk = 8;
  p.num_threads = 2;
  return p;
}

struct ModePolicy {
  ParallelMode mode;
  GrowPolicy policy;
};

class EndToEnd : public ::testing::TestWithParam<ModePolicy> {};

TEST_P(EndToEnd, LearnsSeparableData) {
  // Held-out split of ONE generated problem (a different seed would be a
  // different learning task, not a test set).
  const Dataset all = LearnableData(4000);
  const Dataset train = all.Slice(0, 3000);
  const Dataset test = all.Slice(3000, 4000);
  TrainParams p = FastParams();
  p.mode = GetParam().mode;
  p.grow_policy = GetParam().policy;
  GbdtTrainer trainer(p);
  const GbdtModel model = trainer.Train(train);
  EXPECT_EQ(model.NumTrees(), 15u);
  const double train_auc = Auc(train.labels(), model.Predict(train));
  const double test_auc = Auc(test.labels(), model.Predict(test));
  EXPECT_GT(train_auc, 0.85) << ToString(p.mode) << "/"
                             << ToString(p.grow_policy);
  EXPECT_GT(test_auc, 0.80);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndPolicies, EndToEnd,
    ::testing::Values(
        ModePolicy{ParallelMode::kDP, GrowPolicy::kDepthwise},
        ModePolicy{ParallelMode::kDP, GrowPolicy::kLeafwise},
        ModePolicy{ParallelMode::kMP, GrowPolicy::kTopK},
        ModePolicy{ParallelMode::kSYNC, GrowPolicy::kTopK},
        ModePolicy{ParallelMode::kASYNC, GrowPolicy::kTopK},
        ModePolicy{ParallelMode::kASYNC, GrowPolicy::kLeafwise}),
    [](const ::testing::TestParamInfo<ModePolicy>& info) {
      return ToString(info.param.mode) + "_" + ToString(info.param.policy);
    });

TEST(Gbdt, LossDecreasesOverIterations) {
  const Dataset train = LearnableData(2000);
  TrainParams p = FastParams();
  p.num_trees = 20;
  GbdtTrainer trainer(p);
  std::vector<double> losses;
  trainer.Train(train, nullptr, [&](const IterationInfo& info) {
    std::vector<double> probs(info.margins.size());
    for (size_t i = 0; i < probs.size(); ++i) {
      probs[i] = 1.0 / (1.0 + std::exp(-info.margins[i]));
    }
    losses.push_back(LogLoss(train.labels(), probs));
  });
  ASSERT_EQ(losses.size(), 20u);
  EXPECT_LT(losses.back(), losses.front() * 0.8);
  // Monotone non-increasing within tolerance (boosting on train loss).
  for (size_t i = 1; i < losses.size(); ++i) {
    EXPECT_LE(losses[i], losses[i - 1] + 1e-9);
  }
}

TEST(Gbdt, IncrementalMarginsEqualModelPrediction) {
  const Dataset train = LearnableData(1200);
  TrainParams p = FastParams();
  p.num_trees = 8;
  GbdtTrainer trainer(p);
  std::vector<double> final_margins;
  const GbdtModel model =
      trainer.Train(train, nullptr, [&](const IterationInfo& info) {
        if (info.iteration == p.num_trees - 1) {
          final_margins = info.margins;
        }
      });
  const std::vector<double> predicted = model.PredictMargins(train);
  ASSERT_EQ(final_margins.size(), predicted.size());
  for (size_t i = 0; i < predicted.size(); ++i) {
    // Raw prediction re-walks trees with float cuts; must agree closely.
    EXPECT_NEAR(final_margins[i], predicted[i], 1e-9) << "row " << i;
  }
}

TEST(Gbdt, DeterministicAcrossRunsAndThreads) {
  const Dataset train = LearnableData(1500);
  TrainParams p = FastParams();
  p.num_trees = 5;
  p.mode = ParallelMode::kSYNC;

  auto run = [&](int threads) {
    TrainParams q = p;
    q.num_threads = threads;
    GbdtTrainer trainer(q);
    return trainer.Train(train);
  };
  const GbdtModel a = run(1);
  const GbdtModel b = run(1);
  const GbdtModel c = run(4);
  ASSERT_EQ(a.NumTrees(), b.NumTrees());
  for (size_t t = 0; t < a.NumTrees(); ++t) {
    EXPECT_TRUE(harp::testing::TreesEqual(a.tree(t), b.tree(t)));
    EXPECT_TRUE(harp::testing::TreesEqual(a.tree(t), c.tree(t)));
  }
}

// Regression guard for the specialized BuildHist kernels and the DP
// replica lifecycle: repeated trainings with a fixed seed must produce
// bit-identical trees AND predictions, in both the replica-reducing DP
// mode and the shared-histogram MP mode, single- and multi-threaded.
class DeterministicMode : public ::testing::TestWithParam<ParallelMode> {};

TEST_P(DeterministicMode, RepeatTrainingIsBitIdentical) {
  const Dataset train = LearnableData(1500);
  TrainParams p = FastParams();
  p.num_trees = 5;
  p.mode = GetParam();

  auto run = [&](int threads) {
    TrainParams q = p;
    q.num_threads = threads;
    GbdtTrainer trainer(q);
    return trainer.Train(train);
  };
  const GbdtModel a = run(2);
  const GbdtModel b = run(2);
  const GbdtModel c = run(1);
  ASSERT_EQ(a.NumTrees(), b.NumTrees());
  ASSERT_EQ(a.NumTrees(), c.NumTrees());
  for (size_t t = 0; t < a.NumTrees(); ++t) {
    EXPECT_TRUE(harp::testing::TreesEqual(a.tree(t), b.tree(t)))
        << "tree " << t << " differs between identical runs";
    EXPECT_TRUE(harp::testing::TreesEqual(a.tree(t), c.tree(t)))
        << "tree " << t << " differs across thread counts";
  }
  const std::vector<double> pa = a.Predict(train);
  const std::vector<double> pb = b.Predict(train);
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i], pb[i]) << "prediction " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(DpAndMp, DeterministicMode,
                         ::testing::Values(ParallelMode::kDP,
                                           ParallelMode::kMP),
                         [](const ::testing::TestParamInfo<ParallelMode>& i) {
                           return ToString(i.param);
                         });

TEST(Gbdt, TrainBinnedMatchesTrain) {
  const Dataset train = LearnableData(1000);
  TrainParams p = FastParams();
  p.num_trees = 4;
  GbdtTrainer trainer(p);
  const GbdtModel a = trainer.Train(train);

  ThreadPool pool(2);
  const BinnedMatrix matrix = BinnedMatrix::Build(
      train, QuantileCuts::Compute(train, p.max_bins, &pool), &pool);
  const GbdtModel b = trainer.TrainBinned(matrix, train.labels());
  ASSERT_EQ(a.NumTrees(), b.NumTrees());
  for (size_t t = 0; t < a.NumTrees(); ++t) {
    EXPECT_TRUE(harp::testing::TreesEqual(a.tree(t), b.tree(t)));
  }
}

TEST(Gbdt, RegressionReducesRmse) {
  SyntheticSpec spec;
  spec.rows = 2000;
  spec.features = 10;
  spec.label = LabelKind::kRegression;
  spec.margin_scale = 3.0;
  spec.seed = 401;
  const Dataset train = GenerateSynthetic(spec);

  TrainParams p = FastParams();
  p.objective = ObjectiveKind::kSquaredError;
  p.num_trees = 25;
  p.base_score = 0.5;
  GbdtTrainer trainer(p);
  const GbdtModel model = trainer.Train(train);
  const double rmse = Rmse(train.labels(), model.Predict(train));

  // Baseline: predicting the mean.
  RunningStats stats;
  for (float y : train.labels()) stats.Add(y);
  EXPECT_LT(rmse, stats.Stddev() * 0.8);
}

TEST(Gbdt, StatsAccumulateAcrossTrees) {
  const Dataset train = LearnableData(800);
  TrainParams p = FastParams();
  p.num_trees = 6;
  TrainStats stats;
  GbdtTrainer trainer(p);
  trainer.Train(train, &stats);
  EXPECT_EQ(stats.trees, 6);
  EXPECT_EQ(stats.tree_seconds.size(), 6u);
  EXPECT_GT(stats.wall_ns, 0);
  EXPECT_GT(stats.gradient_ns, 0);
  EXPECT_GT(stats.update_ns, 0);
  EXPECT_GT(stats.sync.parallel_regions, 0);
  EXPECT_FALSE(stats.Report().empty());
}

TEST(Gbdt, CallbackSeesEveryIteration) {
  const Dataset train = LearnableData(500);
  TrainParams p = FastParams();
  p.num_trees = 7;
  int calls = 0;
  GbdtTrainer trainer(p);
  trainer.Train(train, nullptr, [&](const IterationInfo& info) {
    EXPECT_EQ(info.iteration, calls);
    EXPECT_TRUE(info.tree.CheckValid());
    EXPECT_GE(info.tree_seconds, 0.0);
    ++calls;
  });
  EXPECT_EQ(calls, 7);
}

// ---------- logistic oracle: the refactor must not move a single bit ----

// The pre-refactor trainer computed logistic gradients inline as
//   p = 1/(1+exp(-m)); g = (float)(p - y); h = (float)max(p(1-p), 1e-16)
// over a parallel row loop. The registry objective must reproduce those
// bits exactly for any margins, so every logistic model (and therefore
// its AUC) is unchanged by the objective/metric refactor.
TEST(Gbdt, LogisticGradientsBitIdenticalToPreRefactorFormula) {
  Rng rng(23);
  const size_t n = 20000;
  std::vector<float> labels(n);
  std::vector<double> margins(n);
  for (size_t i = 0; i < n; ++i) {
    labels[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
    margins[i] = rng.Uniform(-6.0, 6.0);
  }
  std::vector<GradientPair> oracle(n);
  for (size_t i = 0; i < n; ++i) {
    const double p = 1.0 / (1.0 + std::exp(-margins[i]));
    oracle[i] = GradientPair{
        static_cast<float>(p - labels[i]),
        static_cast<float>(std::max(p * (1.0 - p), 1e-16))};
  }
  const auto obj = Objective::Create(ObjectiveKind::kLogistic);
  ThreadPool pool(4);
  std::vector<GradientPair> got;
  obj->ComputeGradients(labels, margins, &got, &pool);
  ASSERT_EQ(got.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(got[i].g, oracle[i].g) << "row " << i;
    EXPECT_EQ(got[i].h, oracle[i].h) << "row " << i;
  }
}

TEST(Gbdt, EvalPathDoesNotPerturbTrainingAndAucDeltaIsZero) {
  const Dataset all = LearnableData(3000);
  const Dataset train = all.Slice(0, 2400);
  const Dataset valid = all.Slice(2400, 3000);
  TrainParams p = FastParams();

  const GbdtModel plain = GbdtTrainer(p).Train(train);
  EvalSet eval;
  eval.data = &valid;
  eval.metric = "auc";
  const GbdtModel with_eval = GbdtTrainer(p).Train(train, nullptr, {}, &eval);
  ASSERT_EQ(plain.NumTrees(), with_eval.NumTrees());
  for (size_t t = 0; t < plain.NumTrees(); ++t) {
    EXPECT_TRUE(harp::testing::TreesEqual(plain.tree(t), with_eval.tree(t)))
        << "eval-set evaluation changed tree " << t;
  }
  // AUC on sigmoid-transformed predictions (the registry path) equals AUC
  // on raw margins (the pre-refactor path) with delta exactly 0: sigmoid
  // is strictly monotone, so the rank statistic sees identical orderings.
  const std::vector<double> margins = plain.PredictMargins(valid);
  std::vector<double> probs(margins.size());
  for (size_t i = 0; i < margins.size(); ++i) {
    probs[i] = 1.0 / (1.0 + std::exp(-margins[i]));
  }
  const double auc_margins = Auc(valid.labels(), margins);
  const double auc_probs =
      Metric::Create("auc")->Evaluate(valid.labels(), probs, nullptr);
  EXPECT_EQ(auc_margins - auc_probs, 0.0);
  ASSERT_FALSE(eval.history.empty());
  EXPECT_EQ(eval.history.back(), auc_probs);
}

// ---------- quantile regression ----------

TEST(Gbdt, QuantileCoverageMatchesAlpha) {
  SyntheticSpec spec;
  spec.rows = 6000;
  spec.features = 10;
  spec.label = LabelKind::kRegression;
  spec.margin_scale = 2.0;
  spec.seed = 411;
  const Dataset train = GenerateSynthetic(spec);

  for (double alpha : {0.25, 0.5, 0.9}) {
    TrainParams p = FastParams();
    p.objective = ObjectiveKind::kQuantile;
    p.quantile_alpha = alpha;
    p.base_score = 0.0;
    p.num_trees = 80;
    p.tree_size = 8;
    const GbdtModel model = GbdtTrainer(p).Train(train);
    const std::vector<double> preds = model.Predict(train);
    double covered = 0.0;
    for (size_t i = 0; i < preds.size(); ++i) {
      if (static_cast<double>(train.labels()[i]) <= preds[i]) covered += 1.0;
    }
    const double coverage = covered / static_cast<double>(preds.size());
    // An alpha-quantile fit leaves ~alpha of the labels at or below the
    // prediction.
    EXPECT_NEAR(coverage, alpha, 0.02) << "alpha=" << alpha;
  }
}

TEST(Gbdt, QuantileTailsBracketTheMedian) {
  SyntheticSpec spec;
  spec.rows = 3000;
  spec.features = 8;
  spec.label = LabelKind::kRegression;
  spec.seed = 413;
  const Dataset train = GenerateSynthetic(spec);
  auto fit = [&](double alpha) {
    TrainParams p = FastParams();
    p.objective = ObjectiveKind::kQuantile;
    p.quantile_alpha = alpha;
    p.base_score = 0.0;
    p.num_trees = 40;
    return GbdtTrainer(p).Train(train).Predict(train);
  };
  const auto lo = fit(0.1);
  const auto mid = fit(0.5);
  const auto hi = fit(0.9);
  double lo_below = 0.0;
  double hi_above = 0.0;
  for (size_t i = 0; i < mid.size(); ++i) {
    if (lo[i] <= mid[i]) lo_below += 1.0;
    if (hi[i] >= mid[i]) hi_above += 1.0;
  }
  // Quantile bands keep their order for the vast majority of rows.
  EXPECT_GT(lo_below / mid.size(), 0.95);
  EXPECT_GT(hi_above / mid.size(), 0.95);
}

// ---------- Poisson regression ----------

Dataset CountData(uint32_t rows, uint64_t seed) {
  // Count labels from a log-linear rate over dense features.
  SyntheticSpec spec;
  spec.rows = rows;
  spec.features = 8;
  spec.label = LabelKind::kRegression;
  spec.margin_scale = 1.0;
  spec.seed = seed;
  const Dataset base = GenerateSynthetic(spec);
  std::vector<float> counts(base.num_rows());
  Rng rng(seed ^ 0xC04A7ULL);
  for (uint32_t r = 0; r < base.num_rows(); ++r) {
    // Rate in [~0.3, ~8]; draw a deterministic pseudo-Poisson count by
    // rounding rate + noise (the objective only needs y >= 0 with
    // E[y|x] = exp(f(x))-shaped structure, not exact Poisson sampling).
    const double rate = std::exp(
        std::clamp(static_cast<double>(base.labels()[r]) * 0.5, -1.2, 2.1));
    const double noisy = rate + rng.Normal() * std::sqrt(rate);
    counts[r] = static_cast<float>(std::max(0.0, std::round(noisy)));
  }
  return Dataset::FromDense(base.num_rows(), base.num_features(),
                            std::vector<float>(base.dense_values()),
                            std::move(counts));
}

TEST(Gbdt, PoissonDevianceDecreasesMonotonicallyEarly) {
  const Dataset train = CountData(4000, 417);
  TrainParams p = FastParams();
  p.objective = ObjectiveKind::kPoisson;
  p.base_score = 1.0;
  p.num_trees = 25;
  p.tree_size = 6;
  std::vector<double> deviance;
  GbdtTrainer(p).Train(train, nullptr, [&](const IterationInfo& info) {
    std::vector<double> rates(info.margins.size());
    for (size_t i = 0; i < rates.size(); ++i) {
      rates[i] = std::exp(info.margins[i]);
    }
    deviance.push_back(MeanPoissonDeviance(train.labels(), rates));
  });
  ASSERT_EQ(deviance.size(), 25u);
  // Boosting on the train set: deviance decreases monotonically over the
  // early iterations (the acceptance window) and substantially overall.
  for (size_t i = 1; i < 10; ++i) {
    EXPECT_LT(deviance[i], deviance[i - 1]) << "iteration " << i;
  }
  EXPECT_LT(deviance.back(), deviance.front() * 0.9);
}

TEST(Gbdt, PoissonPredictionsAreRatesNearTheMean) {
  const Dataset train = CountData(3000, 419);
  TrainParams p = FastParams();
  p.objective = ObjectiveKind::kPoisson;
  p.base_score = 1.0;
  p.num_trees = 30;
  const GbdtModel model = GbdtTrainer(p).Train(train);
  const std::vector<double> rates = model.Predict(train);
  double label_mean = 0.0;
  double rate_mean = 0.0;
  for (size_t i = 0; i < rates.size(); ++i) {
    EXPECT_GT(rates[i], 0.0);  // exp link: rates are strictly positive
    label_mean += train.labels()[i];
    rate_mean += rates[i];
  }
  label_mean /= static_cast<double>(rates.size());
  rate_mean /= static_cast<double>(rates.size());
  EXPECT_NEAR(rate_mean, label_mean, 0.15 * label_mean);
}

// ---------- LambdaRank ----------

TEST(Gbdt, LambdaRankBeatsPointwiseLogisticOnNdcg) {
  RankingSpec spec;
  spec.num_queries = 400;
  spec.seed = 97;
  const Dataset all = GenerateRankingSynthetic(spec);
  ASSERT_TRUE(all.has_groups());
  // Split on a query boundary so both halves keep whole groups.
  const uint32_t split_group = 320;
  const uint32_t split_row = all.group_ptr()[split_group];
  const Dataset train = all.Slice(0, split_row);
  const Dataset test = all.Slice(split_row, all.num_rows());
  ASSERT_TRUE(train.has_groups());
  ASSERT_TRUE(test.has_groups());
  ASSERT_EQ(train.num_groups(), split_group);

  TrainParams rank_params = FastParams();
  rank_params.objective = ObjectiveKind::kLambdaRank;
  rank_params.ndcg_k = 10;
  rank_params.num_trees = 120;
  rank_params.tree_size = 16;
  const GbdtModel ranker = GbdtTrainer(rank_params).Train(train);

  // Pointwise baseline: same rows, relevance binarized at grade >= 3 and
  // fit with plain logistic loss (no query structure).
  std::vector<float> binary(train.num_rows());
  for (uint32_t r = 0; r < train.num_rows(); ++r) {
    binary[r] = train.labels()[r] >= 3.0f ? 1.0f : 0.0f;
  }
  const Dataset pointwise_train = Dataset::FromDense(
      train.num_rows(), train.num_features(),
      std::vector<float>(train.dense_values()), std::move(binary));
  TrainParams point_params = FastParams();
  point_params.num_trees = 120;
  point_params.tree_size = 16;
  const GbdtModel pointwise = GbdtTrainer(point_params).Train(pointwise_train);

  const double ndcg_rank = NdcgAtK(test.labels(), ranker.PredictMargins(test),
                                   test.group_ptr(), 10);
  const double ndcg_point =
      NdcgAtK(test.labels(), pointwise.PredictMargins(test),
              test.group_ptr(), 10);
  std::printf("ndcg@10: lambdarank %.4f, pointwise %.4f\n", ndcg_rank,
              ndcg_point);
  // The list-wise loss must exploit the graded relevance (4 vs 3) that
  // binarization erases.
  EXPECT_GT(ndcg_rank, ndcg_point + 0.005)
      << "lambdarank " << ndcg_rank << " vs pointwise " << ndcg_point;
  EXPECT_GT(ndcg_rank, 0.6);
}

TEST(Gbdt, LambdaRankTrainingIsThreadCountInvariant) {
  RankingSpec spec;
  spec.num_queries = 120;
  spec.seed = 101;
  const Dataset train = GenerateRankingSynthetic(spec);
  TrainParams p = FastParams();
  p.objective = ObjectiveKind::kLambdaRank;
  p.num_trees = 6;
  auto run = [&](int threads) {
    TrainParams q = p;
    q.num_threads = threads;
    return GbdtTrainer(q).Train(train);
  };
  const GbdtModel a = run(1);
  const GbdtModel b = run(4);
  ASSERT_EQ(a.NumTrees(), b.NumTrees());
  for (size_t t = 0; t < a.NumTrees(); ++t) {
    EXPECT_TRUE(harp::testing::TreesEqual(a.tree(t), b.tree(t)))
        << "tree " << t << " differs across thread counts";
  }
}

TEST(Gbdt, LambdaRankImprovesTrainNdcgOverIterations) {
  RankingSpec spec;
  spec.num_queries = 200;
  spec.seed = 103;
  const Dataset train = GenerateRankingSynthetic(spec);
  TrainParams p = FastParams();
  p.objective = ObjectiveKind::kLambdaRank;
  p.num_trees = 30;
  p.tree_size = 8;
  std::vector<double> ndcg;
  GbdtTrainer(p).Train(train, nullptr, [&](const IterationInfo& info) {
    ndcg.push_back(
        NdcgAtK(train.labels(), info.margins, train.group_ptr(), 10));
  });
  ASSERT_EQ(ndcg.size(), 30u);
  EXPECT_GT(ndcg.back(), ndcg.front() + 0.05);
}

TEST(GbdtDeath, LambdaRankWithoutGroupsRejected) {
  const Dataset train = LearnableData(500);
  TrainParams p = FastParams();
  p.objective = ObjectiveKind::kLambdaRank;
  p.num_trees = 2;
  GbdtTrainer trainer(p);
  EXPECT_DEATH(trainer.Train(train), "query groups");
}

TEST(Gbdt, SparseAndDenseInputsTrainEquivalently) {
  SyntheticSpec spec;
  spec.rows = 1200;
  spec.features = 20;
  spec.density = 0.5;
  spec.seed = 501;
  spec.sparse_storage = false;
  const Dataset dense = GenerateSynthetic(spec);
  spec.sparse_storage = true;
  const Dataset sparse = GenerateSynthetic(spec);

  TrainParams p = FastParams();
  p.num_trees = 4;
  GbdtTrainer trainer(p);
  const GbdtModel a = trainer.Train(dense);
  const GbdtModel b = trainer.Train(sparse);
  for (size_t t = 0; t < a.NumTrees(); ++t) {
    EXPECT_TRUE(harp::testing::TreesEqual(a.tree(t), b.tree(t)));
  }
}

}  // namespace
}  // namespace harp
