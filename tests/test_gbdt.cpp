// End-to-end boosting tests: learning works across every mode/policy, the
// incremental margins equal full model re-prediction, callbacks fire,
// training is deterministic.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "core/gbdt.h"
#include "core/metrics.h"
#include "data/synthetic.h"
#include "test_util.h"

namespace harp {
namespace {

Dataset LearnableData(uint32_t rows, uint64_t seed = 301) {
  SyntheticSpec spec;
  spec.rows = rows;
  spec.features = 12;
  spec.density = 0.9;
  spec.mean_distinct = 40;
  spec.active_features = 6;
  spec.margin_scale = 3.0;  // quite separable
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

TrainParams FastParams() {
  TrainParams p;
  p.num_trees = 15;
  p.tree_size = 4;
  p.grow_policy = GrowPolicy::kTopK;
  p.topk = 8;
  p.num_threads = 2;
  return p;
}

struct ModePolicy {
  ParallelMode mode;
  GrowPolicy policy;
};

class EndToEnd : public ::testing::TestWithParam<ModePolicy> {};

TEST_P(EndToEnd, LearnsSeparableData) {
  // Held-out split of ONE generated problem (a different seed would be a
  // different learning task, not a test set).
  const Dataset all = LearnableData(4000);
  const Dataset train = all.Slice(0, 3000);
  const Dataset test = all.Slice(3000, 4000);
  TrainParams p = FastParams();
  p.mode = GetParam().mode;
  p.grow_policy = GetParam().policy;
  GbdtTrainer trainer(p);
  const GbdtModel model = trainer.Train(train);
  EXPECT_EQ(model.NumTrees(), 15u);
  const double train_auc = Auc(train.labels(), model.Predict(train));
  const double test_auc = Auc(test.labels(), model.Predict(test));
  EXPECT_GT(train_auc, 0.85) << ToString(p.mode) << "/"
                             << ToString(p.grow_policy);
  EXPECT_GT(test_auc, 0.80);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndPolicies, EndToEnd,
    ::testing::Values(
        ModePolicy{ParallelMode::kDP, GrowPolicy::kDepthwise},
        ModePolicy{ParallelMode::kDP, GrowPolicy::kLeafwise},
        ModePolicy{ParallelMode::kMP, GrowPolicy::kTopK},
        ModePolicy{ParallelMode::kSYNC, GrowPolicy::kTopK},
        ModePolicy{ParallelMode::kASYNC, GrowPolicy::kTopK},
        ModePolicy{ParallelMode::kASYNC, GrowPolicy::kLeafwise}),
    [](const ::testing::TestParamInfo<ModePolicy>& info) {
      return ToString(info.param.mode) + "_" + ToString(info.param.policy);
    });

TEST(Gbdt, LossDecreasesOverIterations) {
  const Dataset train = LearnableData(2000);
  TrainParams p = FastParams();
  p.num_trees = 20;
  GbdtTrainer trainer(p);
  std::vector<double> losses;
  trainer.Train(train, nullptr, [&](const IterationInfo& info) {
    std::vector<double> probs(info.margins.size());
    for (size_t i = 0; i < probs.size(); ++i) {
      probs[i] = 1.0 / (1.0 + std::exp(-info.margins[i]));
    }
    losses.push_back(LogLoss(train.labels(), probs));
  });
  ASSERT_EQ(losses.size(), 20u);
  EXPECT_LT(losses.back(), losses.front() * 0.8);
  // Monotone non-increasing within tolerance (boosting on train loss).
  for (size_t i = 1; i < losses.size(); ++i) {
    EXPECT_LE(losses[i], losses[i - 1] + 1e-9);
  }
}

TEST(Gbdt, IncrementalMarginsEqualModelPrediction) {
  const Dataset train = LearnableData(1200);
  TrainParams p = FastParams();
  p.num_trees = 8;
  GbdtTrainer trainer(p);
  std::vector<double> final_margins;
  const GbdtModel model =
      trainer.Train(train, nullptr, [&](const IterationInfo& info) {
        if (info.iteration == p.num_trees - 1) {
          final_margins = info.margins;
        }
      });
  const std::vector<double> predicted = model.PredictMargins(train);
  ASSERT_EQ(final_margins.size(), predicted.size());
  for (size_t i = 0; i < predicted.size(); ++i) {
    // Raw prediction re-walks trees with float cuts; must agree closely.
    EXPECT_NEAR(final_margins[i], predicted[i], 1e-9) << "row " << i;
  }
}

TEST(Gbdt, DeterministicAcrossRunsAndThreads) {
  const Dataset train = LearnableData(1500);
  TrainParams p = FastParams();
  p.num_trees = 5;
  p.mode = ParallelMode::kSYNC;

  auto run = [&](int threads) {
    TrainParams q = p;
    q.num_threads = threads;
    GbdtTrainer trainer(q);
    return trainer.Train(train);
  };
  const GbdtModel a = run(1);
  const GbdtModel b = run(1);
  const GbdtModel c = run(4);
  ASSERT_EQ(a.NumTrees(), b.NumTrees());
  for (size_t t = 0; t < a.NumTrees(); ++t) {
    EXPECT_TRUE(harp::testing::TreesEqual(a.tree(t), b.tree(t)));
    EXPECT_TRUE(harp::testing::TreesEqual(a.tree(t), c.tree(t)));
  }
}

// Regression guard for the specialized BuildHist kernels and the DP
// replica lifecycle: repeated trainings with a fixed seed must produce
// bit-identical trees AND predictions, in both the replica-reducing DP
// mode and the shared-histogram MP mode, single- and multi-threaded.
class DeterministicMode : public ::testing::TestWithParam<ParallelMode> {};

TEST_P(DeterministicMode, RepeatTrainingIsBitIdentical) {
  const Dataset train = LearnableData(1500);
  TrainParams p = FastParams();
  p.num_trees = 5;
  p.mode = GetParam();

  auto run = [&](int threads) {
    TrainParams q = p;
    q.num_threads = threads;
    GbdtTrainer trainer(q);
    return trainer.Train(train);
  };
  const GbdtModel a = run(2);
  const GbdtModel b = run(2);
  const GbdtModel c = run(1);
  ASSERT_EQ(a.NumTrees(), b.NumTrees());
  ASSERT_EQ(a.NumTrees(), c.NumTrees());
  for (size_t t = 0; t < a.NumTrees(); ++t) {
    EXPECT_TRUE(harp::testing::TreesEqual(a.tree(t), b.tree(t)))
        << "tree " << t << " differs between identical runs";
    EXPECT_TRUE(harp::testing::TreesEqual(a.tree(t), c.tree(t)))
        << "tree " << t << " differs across thread counts";
  }
  const std::vector<double> pa = a.Predict(train);
  const std::vector<double> pb = b.Predict(train);
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i], pb[i]) << "prediction " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(DpAndMp, DeterministicMode,
                         ::testing::Values(ParallelMode::kDP,
                                           ParallelMode::kMP),
                         [](const ::testing::TestParamInfo<ParallelMode>& i) {
                           return ToString(i.param);
                         });

TEST(Gbdt, TrainBinnedMatchesTrain) {
  const Dataset train = LearnableData(1000);
  TrainParams p = FastParams();
  p.num_trees = 4;
  GbdtTrainer trainer(p);
  const GbdtModel a = trainer.Train(train);

  ThreadPool pool(2);
  const BinnedMatrix matrix = BinnedMatrix::Build(
      train, QuantileCuts::Compute(train, p.max_bins, &pool), &pool);
  const GbdtModel b = trainer.TrainBinned(matrix, train.labels());
  ASSERT_EQ(a.NumTrees(), b.NumTrees());
  for (size_t t = 0; t < a.NumTrees(); ++t) {
    EXPECT_TRUE(harp::testing::TreesEqual(a.tree(t), b.tree(t)));
  }
}

TEST(Gbdt, RegressionReducesRmse) {
  SyntheticSpec spec;
  spec.rows = 2000;
  spec.features = 10;
  spec.label = LabelKind::kRegression;
  spec.margin_scale = 3.0;
  spec.seed = 401;
  const Dataset train = GenerateSynthetic(spec);

  TrainParams p = FastParams();
  p.objective = ObjectiveKind::kSquaredError;
  p.num_trees = 25;
  p.base_score = 0.5;
  GbdtTrainer trainer(p);
  const GbdtModel model = trainer.Train(train);
  const double rmse = Rmse(train.labels(), model.Predict(train));

  // Baseline: predicting the mean.
  RunningStats stats;
  for (float y : train.labels()) stats.Add(y);
  EXPECT_LT(rmse, stats.Stddev() * 0.8);
}

TEST(Gbdt, StatsAccumulateAcrossTrees) {
  const Dataset train = LearnableData(800);
  TrainParams p = FastParams();
  p.num_trees = 6;
  TrainStats stats;
  GbdtTrainer trainer(p);
  trainer.Train(train, &stats);
  EXPECT_EQ(stats.trees, 6);
  EXPECT_EQ(stats.tree_seconds.size(), 6u);
  EXPECT_GT(stats.wall_ns, 0);
  EXPECT_GT(stats.gradient_ns, 0);
  EXPECT_GT(stats.update_ns, 0);
  EXPECT_GT(stats.sync.parallel_regions, 0);
  EXPECT_FALSE(stats.Report().empty());
}

TEST(Gbdt, CallbackSeesEveryIteration) {
  const Dataset train = LearnableData(500);
  TrainParams p = FastParams();
  p.num_trees = 7;
  int calls = 0;
  GbdtTrainer trainer(p);
  trainer.Train(train, nullptr, [&](const IterationInfo& info) {
    EXPECT_EQ(info.iteration, calls);
    EXPECT_TRUE(info.tree.CheckValid());
    EXPECT_GE(info.tree_seconds, 0.0);
    ++calls;
  });
  EXPECT_EQ(calls, 7);
}

TEST(Gbdt, SparseAndDenseInputsTrainEquivalently) {
  SyntheticSpec spec;
  spec.rows = 1200;
  spec.features = 20;
  spec.density = 0.5;
  spec.seed = 501;
  spec.sparse_storage = false;
  const Dataset dense = GenerateSynthetic(spec);
  spec.sparse_storage = true;
  const Dataset sparse = GenerateSynthetic(spec);

  TrainParams p = FastParams();
  p.num_trees = 4;
  GbdtTrainer trainer(p);
  const GbdtModel a = trainer.Train(dense);
  const GbdtModel b = trainer.Train(sparse);
  for (size_t t = 0; t < a.NumTrees(); ++t) {
    EXPECT_TRUE(harp::testing::TreesEqual(a.tree(t), b.tree(t)));
  }
}

}  // namespace
}  // namespace harp
