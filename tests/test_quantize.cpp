// Quantized-histogram tests: scale selection invariants on adversarial
// gradient distributions, round-trip error bounds, pack/widen/cell field
// arithmetic, thread-count determinism, forced-scalar vs forced-AVX2
// bit-identity of the whole quantized pipeline (quantize, accumulate,
// reduce, dequantize), kernel parity against a WidenQuant reference loop
// across every dispatch variant, the quantized DP builder, and end-to-end
// training accuracy against the f64 oracle.
#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/gbdt.h"
#include "core/hist_builder.h"
#include "core/hist_kernels.h"
#include "core/metrics.h"
#include "core/quantize.h"
#include "core/simd.h"
#include "data/synthetic.h"
#include "test_util.h"

namespace harp {
namespace {

using harp::testing::MakeDataset;
using harp::testing::MakeGradients;
using harp::testing::NaiveHist;

// Multiplicative slack on the analytic rounding bounds: the scaled value
// g * 2^k is exact in float (power-of-two multiply) except when it lands
// in the subnormal range, where the absolute loss is < 2^-126 — far below
// half a quantization step. The slack absorbs that and the f64 reference
// accumulation rounding.
constexpr double kBoundSlack = 1.0 + 1e-6;

std::vector<GradientPair> ConstGradients(size_t n, float g, float h) {
  std::vector<GradientPair> gh(n);
  for (auto& p : gh) {
    p.g = g;
    p.h = h;
  }
  return gh;
}

// Checks the documented scale-selection contract for one channel.
void CheckExponent(int exp, double max_abs, double sum_abs, double fit_limit,
                   size_t n, const std::string& channel) {
  SCOPED_TRACE(channel);
  ASSERT_GE(exp, -126);
  ASSERT_LE(exp, 126);
  if (max_abs == 0.0) {
    // All-zero stream: any scale is exact; the picker returns the max.
    EXPECT_EQ(exp, 126);
    return;
  }
  const double sum_room = kQuantSumLimit - static_cast<double>(n);
  // fit: every row's scaled magnitude fits the 16-bit field.
  EXPECT_LE(std::ldexp(max_abs, exp), fit_limit);
  // sum: any per-cell subset sum plus one unit of rounding drift per row
  // fits the 32-bit field.
  EXPECT_LE(std::ldexp(sum_abs, exp), sum_room);
  // Maximality: one more bit of precision violates a constraint (unless
  // already clamped at the top of the exact-power-of-two range).
  if (exp < 126) {
    EXPECT_TRUE(std::ldexp(max_abs, exp + 1) > fit_limit ||
                std::ldexp(sum_abs, exp + 1) > sum_room)
        << "exponent " << exp << " is not maximal";
  }
}

void CheckScales(const QuantScales& s,
                 const std::vector<GradientPair>& gh) {
  double g_max = 0.0, h_max = 0.0, g_sum = 0.0, h_sum = 0.0;
  for (const auto& p : gh) {
    g_max = std::max(g_max, static_cast<double>(std::fabs(p.g)));
    h_max = std::max(h_max, static_cast<double>(p.h));
    g_sum += std::fabs(p.g);
    h_sum += p.h;
  }
  CheckExponent(s.g_exp, g_max, g_sum, kQuantGMax, gh.size(), "g");
  CheckExponent(s.h_exp, h_max, h_sum, kQuantHMax, gh.size(), "h");
  // Scale fields are exact powers of two and exact inverses of each other.
  EXPECT_EQ(s.g_scale, std::ldexp(1.0f, s.g_exp));
  EXPECT_EQ(s.h_scale, std::ldexp(1.0f, s.h_exp));
  EXPECT_EQ(s.g_inv, std::ldexp(1.0, -s.g_exp));
  EXPECT_EQ(s.h_inv, std::ldexp(1.0, -s.h_exp));
  EXPECT_EQ(static_cast<double>(s.g_scale) * s.g_inv, 1.0);
  EXPECT_EQ(static_cast<double>(s.h_scale) * s.h_inv, 1.0);
}

// Round-trip bound over every row: half a step deterministic, one step
// stochastic (the clamp only ever moves a value back toward range).
void CheckRoundTrip(const std::vector<GradientPair>& gh,
                    const QuantScales& s,
                    const AlignedVector<int32_t>& packed, double steps) {
  ASSERT_EQ(packed.size(), gh.size());
  const double g_bound = steps * s.g_inv * kBoundSlack;
  const double h_bound = steps * s.h_inv * kBoundSlack;
  for (size_t i = 0; i < gh.size(); ++i) {
    const double g_back = static_cast<double>(QuantG(packed[i])) * s.g_inv;
    const double h_back = static_cast<double>(QuantH(packed[i])) * s.h_inv;
    ASSERT_LE(std::fabs(g_back - static_cast<double>(gh[i].g)), g_bound)
        << "row " << i;
    ASSERT_LE(std::fabs(h_back - static_cast<double>(gh[i].h)), h_bound)
        << "row " << i;
    ASSERT_GE(QuantH(packed[i]), 0) << "row " << i;
  }
}

// ---------- scale selection on adversarial distributions ----------

TEST(QuantScales, RandomGradientsSatisfyFitSumAndMaximality) {
  const auto gh = MakeGradients(5000, 7);
  const QuantScales s = ComputeQuantScales(gh, nullptr);
  CheckScales(s, gh);
  AlignedVector<int32_t> packed;
  QuantizeGradients(gh, s, /*stochastic=*/false, 0, 0, nullptr, &packed);
  CheckRoundTrip(gh, s, packed, /*steps=*/0.5);
}

TEST(QuantScales, DenormalGradientsStayExactWithinHalfStep) {
  // Subnormal floats: the exponent clamps at 126 and scaled values round
  // to zero, but the round-trip error must still respect the step bound.
  auto gh = ConstGradients(64, 1e-40f, 1e-41f);
  gh[3].g = -1e-40f;
  const QuantScales s = ComputeQuantScales(gh, nullptr);
  CheckScales(s, gh);
  EXPECT_TRUE(std::isfinite(s.g_scale));
  EXPECT_TRUE(std::isfinite(s.g_inv));
  AlignedVector<int32_t> packed;
  QuantizeGradients(gh, s, false, 0, 0, nullptr, &packed);
  CheckRoundTrip(gh, s, packed, 0.5);
}

TEST(QuantScales, MaxMagnitudeGradientsFitWithoutOverflow) {
  auto gh = ConstGradients(100, FLT_MAX, FLT_MAX);
  for (size_t i = 0; i < gh.size(); i += 2) gh[i].g = -FLT_MAX;
  const QuantScales s = ComputeQuantScales(gh, nullptr);
  CheckScales(s, gh);
  EXPECT_LT(s.g_exp, 0) << "FLT_MAX needs a down-scaling exponent";
  AlignedVector<int32_t> packed;
  QuantizeGradients(gh, s, false, 0, 0, nullptr, &packed);
  for (size_t i = 0; i < gh.size(); ++i) {
    ASSERT_GE(QuantG(packed[i]), -32767);
    ASSERT_LE(QuantG(packed[i]), 32767);
    ASSERT_LE(QuantH(packed[i]), 65535);
  }
  CheckRoundTrip(gh, s, packed, 0.5);
}

TEST(QuantScales, AllZeroHessiansQuantizeToZero) {
  auto gh = MakeGradients(300, 11);
  for (auto& p : gh) p.h = 0.0f;
  const QuantScales s = ComputeQuantScales(gh, nullptr);
  CheckScales(s, gh);
  EXPECT_EQ(s.h_exp, 126);
  AlignedVector<int32_t> packed;
  QuantizeGradients(gh, s, false, 0, 0, nullptr, &packed);
  for (size_t i = 0; i < packed.size(); ++i) {
    ASSERT_EQ(QuantH(packed[i]), 0) << "row " << i;
  }
  CheckRoundTrip(gh, s, packed, 0.5);
}

TEST(QuantScales, AllZeroGradientsProduceZeroPacked) {
  const auto gh = ConstGradients(50, 0.0f, 0.0f);
  const QuantScales s = ComputeQuantScales(gh, nullptr);
  EXPECT_EQ(s.g_exp, 126);
  EXPECT_EQ(s.h_exp, 126);
  AlignedVector<int32_t> packed;
  QuantizeGradients(gh, s, false, 0, 0, nullptr, &packed);
  for (int32_t p : packed) ASSERT_EQ(p, 0);
}

TEST(QuantScales, NegativeHessianDies) {
  auto gh = MakeGradients(10, 3);
  gh[7].h = -0.25f;
  EXPECT_DEATH(ComputeQuantScales(gh, nullptr), "negative hessian");
}

TEST(QuantScales, DeterministicAcrossThreadCounts) {
  const auto gh = MakeGradients(20000, 21);  // several 4096-row chunks
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const QuantScales a = ComputeQuantScales(gh, nullptr);
  const QuantScales b = ComputeQuantScales(gh, &pool1);
  const QuantScales c = ComputeQuantScales(gh, &pool4);
  EXPECT_EQ(a.g_exp, b.g_exp);
  EXPECT_EQ(a.g_exp, c.g_exp);
  EXPECT_EQ(a.h_exp, b.h_exp);
  EXPECT_EQ(a.h_exp, c.h_exp);

  for (const bool stochastic : {false, true}) {
    AlignedVector<int32_t> pa, pb, pc;
    QuantizeGradients(gh, a, stochastic, 99, 0, nullptr, &pa);
    QuantizeGradients(gh, a, stochastic, 99, 0, &pool1, &pb);
    QuantizeGradients(gh, a, stochastic, 99, 0, &pool4, &pc);
    ASSERT_EQ(pa.size(), gh.size());
    EXPECT_EQ(0, std::memcmp(pa.data(), pb.data(),
                             pa.size() * sizeof(int32_t)))
        << (stochastic ? "stochastic" : "deterministic");
    EXPECT_EQ(0, std::memcmp(pa.data(), pc.data(),
                             pa.size() * sizeof(int32_t)))
        << (stochastic ? "stochastic" : "deterministic");
  }
}

TEST(QuantStochastic, BoundedByOneStepAndDistinctFromDeterministic) {
  const auto gh = MakeGradients(4000, 33);
  const QuantScales s = ComputeQuantScales(gh, nullptr);
  AlignedVector<int32_t> det, sto;
  QuantizeGradients(gh, s, false, 0, 0, nullptr, &det);
  QuantizeGradients(gh, s, true, 12345, 0, nullptr, &sto);
  CheckRoundTrip(gh, s, sto, /*steps=*/1.0);
  // Stochastic rounding must actually dither (values land between grid
  // points with probability ~1 on 4000 random rows).
  EXPECT_NE(0, std::memcmp(det.data(), sto.data(),
                           det.size() * sizeof(int32_t)));
  // And a different seed draws different thresholds.
  AlignedVector<int32_t> sto2;
  QuantizeGradients(gh, s, true, 54321, 0, nullptr, &sto2);
  EXPECT_NE(0, std::memcmp(sto.data(), sto2.data(),
                           sto.size() * sizeof(int32_t)));
}

// ---------- pack / widen / cell field arithmetic ----------

TEST(QuantPack, FieldRoundTripAndWidenAdditivity) {
  const int32_t gs[] = {-32767, -1, 0, 1, 255, 32767};
  const int32_t hs[] = {0, 1, 255, 65535};
  for (int32_t qg : gs) {
    for (int32_t qh : hs) {
      const int32_t packed = PackQuant(qg, qh);
      ASSERT_EQ(QuantG(packed), qg);
      ASSERT_EQ(QuantH(packed), qh);
      const int64_t w = WidenQuant(packed);
      ASSERT_EQ(CellG(w), qg);
      ASSERT_EQ(CellH(w), qh);
    }
  }
  // Cell addition is field-wise: h never borrows from g while the h sum
  // stays below 2^31 (guaranteed by the sum constraint).
  int64_t cell = 0;
  int64_t g_sum = 0, h_sum = 0;
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const int32_t qg =
        static_cast<int32_t>(rng.NextBelow(2 * 32767 + 1)) - 32767;
    const int32_t qh = static_cast<int32_t>(rng.NextBelow(65536));
    cell += WidenQuant(PackQuant(qg, qh));
    g_sum += qg;
    h_sum += qh;
    ASSERT_EQ(CellG(cell), g_sum) << "after " << i + 1 << " adds";
    ASSERT_EQ(CellH(cell), h_sum) << "after " << i + 1 << " adds";
  }
}

// ---------- SIMD dispatch plumbing ----------

TEST(SimdDispatch, ParseResolveAndTables) {
  SimdLevel level;
  EXPECT_TRUE(ParseSimdLevel("scalar", &level));
  EXPECT_EQ(level, SimdLevel::kScalar);
  EXPECT_TRUE(ParseSimdLevel("avx2", &level));
  EXPECT_EQ(level, SimdLevel::kAVX2);
  EXPECT_FALSE(ParseSimdLevel("sse9", &level));
  EXPECT_FALSE(ParseSimdLevel("auto", &level));  // not a concrete level

  EXPECT_EQ(ResolveSimdLevel("scalar"), SimdLevel::kScalar);
  EXPECT_TRUE(SimdSupported(SimdLevel::kScalar));
  EXPECT_EQ(SimdSupported(SimdLevel::kAVX2),
            DetectSimdLevel() == SimdLevel::kAVX2);
  if (!SimdSupported(SimdLevel::kAVX2)) {
    // Requesting an unrunnable level downgrades instead of crashing.
    EXPECT_EQ(ResolveSimdLevel("avx2"), SimdLevel::kScalar);
  } else {
    EXPECT_EQ(ResolveSimdLevel("avx2"), SimdLevel::kAVX2);
    EXPECT_NE(Avx2KernelTables(), nullptr);
  }
}

// ---------- elementwise kernels: scalar vs AVX2 bit-identity ----------

TEST(QuantSimd, QuantizeDequantizeAddBitIdenticalAcrossLevels) {
  if (!SimdSupported(SimdLevel::kAVX2)) {
    GTEST_SKIP() << "AVX2 kernel table unavailable on this binary/CPU";
  }
  // Odd length exercises both vector bodies and scalar tails.
  const auto gh = MakeGradients(4099, 55);
  const QuantScales s = ComputeQuantScales(gh, nullptr);

  AlignedVector<int32_t> ps, pa;
  QuantizeGradients(gh, s, false, 0, static_cast<int>(SimdLevel::kScalar),
                    nullptr, &ps);
  QuantizeGradients(gh, s, false, 0, static_cast<int>(SimdLevel::kAVX2),
                    nullptr, &pa);
  ASSERT_EQ(ps.size(), pa.size());
  for (size_t i = 0; i < ps.size(); ++i) {
    ASSERT_EQ(ps[i], pa[i]) << "quantize row " << i;
  }

  // Accumulate some cells, then dequantize with both tables.
  std::vector<int64_t> cells(1031, 0);
  for (size_t i = 0; i < ps.size(); ++i) {
    cells[i % cells.size()] += WidenQuant(ps[i]);
  }
  std::vector<GHPair> ds(cells.size()), da(cells.size());
  DequantizeHistogram(cells.data(), ds.data(), cells.size(), s,
                      static_cast<int>(SimdLevel::kScalar));
  DequantizeHistogram(cells.data(), da.data(), cells.size(), s,
                      static_cast<int>(SimdLevel::kAVX2));
  EXPECT_EQ(0, std::memcmp(ds.data(), da.data(),
                           cells.size() * sizeof(GHPair)));

  std::vector<int64_t> accs(cells), acca(cells);
  AddHistogramI64(accs.data(), cells.data(), cells.size(),
                  static_cast<int>(SimdLevel::kScalar));
  AddHistogramI64(acca.data(), cells.data(), cells.size(),
                  static_cast<int>(SimdLevel::kAVX2));
  EXPECT_EQ(0, std::memcmp(accs.data(), acca.data(),
                           cells.size() * sizeof(int64_t)));
}

// ---------- accumulation kernels: parity + cross-level identity ----------

// Same shape as the f64 kernel fixture: 19 features forces internal
// feature tiling, 2100 rows crosses the 2048-row tile boundary, 13
// distinct values makes per-feature bin counts uneven.
struct QuantKernelFixture {
  Dataset ds;
  BinnedMatrix matrix;
  std::vector<GradientPair> gh;
  QuantScales scales;
  AlignedVector<int32_t> packed;

  QuantKernelFixture()
      : ds(MakeDataset(2100, 19, 0.85, 71, /*distinct=*/13)),
        matrix(BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16))),
        gh(MakeGradients(2100, 72)) {
    scales = ComputeQuantScales(gh, nullptr);
    QuantizeGradients(gh, scales, false, 0, 0, nullptr, &packed);
  }
};

struct QuantKernelCase {
  bool membuf;
  bool full_bins;
  bool full_features;
};

std::string QuantKernelCaseName(
    const ::testing::TestParamInfo<QuantKernelCase>& info) {
  const QuantKernelCase& c = info.param;
  std::string name = c.membuf ? "membuf" : "gather";
  name += c.full_bins ? "_fullbins" : "_filtered";
  name += c.full_features ? "_fullblock" : "_tiled";
  return name;
}

class QuantKernelParity : public ::testing::TestWithParam<QuantKernelCase> {};

// Every quantized kernel variant must produce EXACTLY the WidenQuant
// reference sums (integer accumulation leaves no ordering freedom), and
// the AVX2 instantiation must match the scalar one bit-for-bit.
TEST_P(QuantKernelParity, MatchesWidenQuantReference) {
  const QuantKernelCase& c = GetParam();
  const QuantKernelFixture fx;
  const uint32_t rows = fx.matrix.num_rows();
  const uint32_t features = fx.matrix.num_features();

  ThreadPool pool(1);
  RowPartitioner partitioner(rows, c.membuf);
  partitioner.Reset(fx.gh, /*max_nodes=*/2, &pool);

  const HistKernelMatrix km =
      MakeHistKernelMatrix(fx.matrix, partitioner, fx.packed.data());
  const HistRowSource src = MakeHistRowSource(partitioner, /*node_id=*/0);
  const QuantKernelFn kernel = SelectQuantHistKernel(
      c.membuf, c.full_bins, c.full_features, SimdLevel::kScalar);
  ASSERT_NE(kernel, nullptr);
  const bool have_avx2 = SimdSupported(SimdLevel::kAVX2);
  const QuantKernelFn kernel_avx2 =
      have_avx2 ? SelectQuantHistKernel(c.membuf, c.full_bins,
                                        c.full_features, SimdLevel::kAVX2)
                : nullptr;

  const Range bins = c.full_bins ? Range{0u, 256u} : Range{2u, 9u};
  const auto blocks = MakeFeatureBlocks(features, c.full_features ? 0 : 5);

  const std::pair<uint32_t, uint32_t> row_ranges[] = {
      {0, 0},        // empty
      {0, 1},        // single row
      {3, 10},       // odd length, unaligned origin
      {0, 2059},     // crosses the 2048-row internal tile boundary
      {2040, 2100},  // range starting near the tile boundary
      {0, rows},     // everything
  };

  for (const auto& [begin, end] : row_ranges) {
    std::vector<int64_t> actual(fx.matrix.TotalBins(), 0);
    std::vector<int64_t> avx2(fx.matrix.TotalBins(), 0);
    std::vector<int64_t> expected(fx.matrix.TotalBins(), 0);
    for (const Range& fb : blocks) {
      kernel(km, src, begin, end, actual.data(), fb, bins);
      if (kernel_avx2 != nullptr) {
        kernel_avx2(km, src, begin, end, avx2.data(), fb, bins);
      }
      partitioner.ForEachRowRange(
          0, begin, end, [&](uint32_t rid, float, float) {
            const int64_t w = WidenQuant(fx.packed[rid]);
            for (uint32_t f = fb.first; f < fb.second; ++f) {
              const uint32_t bin = fx.matrix.Bin(rid, f);
              if (bin < bins.first || bin >= bins.second) continue;
              expected[fx.matrix.BinOffset(f) + bin] += w;
            }
          });
    }
    for (size_t s = 0; s < expected.size(); ++s) {
      ASSERT_EQ(actual[s], expected[s])
          << "rows [" << begin << ", " << end << ") slot " << s;
      if (kernel_avx2 != nullptr) {
        ASSERT_EQ(avx2[s], expected[s])
            << "avx2, rows [" << begin << ", " << end << ") slot " << s;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, QuantKernelParity,
    ::testing::Values(QuantKernelCase{true, true, true},
                      QuantKernelCase{true, true, false},
                      QuantKernelCase{true, false, true},
                      QuantKernelCase{true, false, false},
                      QuantKernelCase{false, true, true},
                      QuantKernelCase{false, true, false},
                      QuantKernelCase{false, false, true},
                      QuantKernelCase{false, false, false}),
    QuantKernelCaseName);

// The dequantized full-histogram must track the f64 reference within the
// per-slot analytic bound: each contributing row adds at most half a
// quantization step of error per channel.
TEST(QuantAccuracy, DequantizedHistogramWithinPerSlotBound) {
  const QuantKernelFixture fx;
  const uint32_t rows = fx.matrix.num_rows();
  ThreadPool pool(1);
  RowPartitioner partitioner(rows, /*use_membuf=*/true);
  partitioner.Reset(fx.gh, /*max_nodes=*/2, &pool);

  const HistKernelMatrix km =
      MakeHistKernelMatrix(fx.matrix, partitioner, fx.packed.data());
  const HistRowSource src = MakeHistRowSource(partitioner, 0);
  const QuantKernelFn kernel =
      SelectQuantHistKernel(true, true, true, SimdLevel::kScalar);

  std::vector<int64_t> cells(fx.matrix.TotalBins(), 0);
  kernel(km, src, 0, rows, cells.data(),
         Range{0u, fx.matrix.num_features()}, Range{0u, 256u});
  std::vector<GHPair> deq(cells.size());
  DequantizeHistogram(cells.data(), deq.data(), cells.size(), fx.scales,
                      static_cast<int>(SimdLevel::kScalar));

  const std::vector<GHPair> ref =
      NaiveHist(fx.matrix, fx.gh, harp::testing::AllRows(rows));
  std::vector<int64_t> counts(cells.size(), 0);
  for (uint32_t rid = 0; rid < rows; ++rid) {
    for (uint32_t f = 0; f < fx.matrix.num_features(); ++f) {
      counts[fx.matrix.BinOffset(f) + fx.matrix.Bin(rid, f)] += 1;
    }
  }
  for (size_t s = 0; s < ref.size(); ++s) {
    const double cnt = static_cast<double>(counts[s]);
    ASSERT_LE(std::fabs(deq[s].g - ref[s].g),
              cnt * 0.5 * fx.scales.g_inv * kBoundSlack + 1e-12)
        << "slot " << s;
    ASSERT_LE(std::fabs(deq[s].h - ref[s].h),
              cnt * 0.5 * fx.scales.h_inv * kBoundSlack + 1e-12)
        << "slot " << s;
  }
}

// ---------- quantized DP builder ----------

// The DP builder in quantized mode (int64 replicas, quant-domain reduce,
// dequantize into the pool histograms) must produce exactly the
// dequantized naive quantized histogram, across repeated builds (replica
// reuse + dirty-ledger clearing) and multiple threads.
TEST(HistBuilderDpQuant, MatchesDequantizedReferenceAcrossBuilds) {
  const Dataset ds = MakeDataset(900, 7, 0.8, 41, /*distinct=*/21);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 32));
  const auto gh = MakeGradients(900, 42);
  TrainParams params;
  params.node_blk_size = 2;
  ThreadPool pool(3);
  RowPartitioner partitioner(900, /*use_membuf=*/true);
  partitioner.Reset(gh, /*max_nodes=*/8, &pool);
  const uint32_t split_bin = std::max(1u, (matrix.NumBins(0) - 1) / 2);
  partitioner.ApplySplit(0, 1, 2, matrix, 0, split_bin,
                         /*default_left=*/false, &pool);

  QuantRound qround;
  qround.scales = ComputeQuantScales(gh, nullptr);
  QuantizeGradients(gh, qround.scales, false, 0, 0, nullptr, &qround.packed);

  HistogramPool hists(matrix.TotalBins());
  const BuildContext ctx{matrix, params,  pool,  partitioner,
                         hists,  &qround, SimdLevel::kScalar};
  HistBuilderDP dp;

  auto reference = [&](int node) {
    std::vector<int64_t> cells(matrix.TotalBins(), 0);
    partitioner.ForEachRow(node, [&](uint32_t rid, float, float) {
      const int64_t w = WidenQuant(qround.packed[rid]);
      for (uint32_t f = 0; f < matrix.num_features(); ++f) {
        cells[matrix.BinOffset(f) + matrix.Bin(rid, f)] += w;
      }
    });
    std::vector<GHPair> expected(cells.size());
    DequantizeHistogram(cells.data(), expected.data(), cells.size(),
                        qround.scales, static_cast<int>(SimdLevel::kScalar));
    return expected;
  };

  for (int iter = 0; iter < 3; ++iter) {
    hists.Acquire(1);
    hists.Acquire(2);
    dp.Build(ctx, std::vector<int>{1, 2});
    for (int node : {1, 2}) {
      const std::vector<GHPair> expected = reference(node);
      const GHPair* actual = hists.Get(node);
      for (size_t s = 0; s < expected.size(); ++s) {
        ASSERT_EQ(actual[s], expected[s])
            << "iter " << iter << " node " << node << " slot " << s;
      }
    }
    hists.ReleaseAll();
  }
  EXPECT_EQ(dp.replica_stats().grow_events, 1)
      << "quant replicas must not reallocate when the layout is unchanged";
}

// ---------- end-to-end training ----------

Dataset LearnableData(uint32_t rows, uint64_t seed = 301) {
  SyntheticSpec spec;
  spec.rows = rows;
  spec.features = 12;
  spec.density = 0.9;
  spec.mean_distinct = 40;
  spec.active_features = 6;
  spec.margin_scale = 3.0;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

TrainParams QuantParams() {
  TrainParams p;
  p.num_trees = 20;
  p.tree_size = 4;
  p.grow_policy = GrowPolicy::kTopK;
  p.topk = 8;
  p.num_threads = 2;
  p.mode = ParallelMode::kSYNC;
  p.quantize_hist = true;
  p.simd = "scalar";
  return p;
}

// Quantized training must match the f64 oracle's generalization within
// 1e-3 AUC on held-out data (16-bit scales leave split decisions intact
// on well-separated problems).
TEST(QuantTraining, AucMatchesF64WithinTolerance) {
  const Dataset all = LearnableData(4000);
  const Dataset train = all.Slice(0, 3000);
  const Dataset test = all.Slice(3000, 4000);

  TrainParams pq = QuantParams();
  TrainParams pf = QuantParams();
  pf.quantize_hist = false;

  TrainStats sq, sf;
  GbdtTrainer tq(pq), tf(pf);
  const GbdtModel mq = tq.Train(train, &sq);
  const GbdtModel mf = tf.Train(train, &sf);

  const double auc_q = Auc(test.labels(), mq.Predict(test));
  const double auc_f = Auc(test.labels(), mf.Predict(test));
  EXPECT_GT(auc_f, 0.80);
  EXPECT_NEAR(auc_q, auc_f, 1e-3);

  // Stats must reflect the cell storage actually used.
  EXPECT_EQ(sq.hist_cell_bytes, sizeof(int64_t));
  EXPECT_EQ(sf.hist_cell_bytes, sizeof(GHPair));
  EXPECT_GT(sq.quantize_ns, 0);
  EXPECT_EQ(sf.quantize_ns, 0);
}

TEST(QuantTraining, StochasticRoundingAlsoLearns) {
  const Dataset all = LearnableData(3000, 302);
  const Dataset train = all.Slice(0, 2200);
  const Dataset test = all.Slice(2200, 3000);
  TrainParams p = QuantParams();
  p.quant_stochastic = true;
  GbdtTrainer trainer(p);
  const GbdtModel model = trainer.Train(train);
  EXPECT_GT(Auc(test.labels(), model.Predict(test)), 0.80);
}

// Integer accumulation is order-independent and dequantization is exact,
// so quantized training is bit-identical across thread counts AND across
// the scalar / AVX2 kernel tables — a stronger guarantee than the f64
// path (which relies on accumulation-order preservation).
class QuantDeterminism : public ::testing::TestWithParam<ParallelMode> {};

TEST_P(QuantDeterminism, BitIdenticalAcrossThreadsAndSimdLevels) {
  const Dataset train = LearnableData(1500);
  TrainParams base = QuantParams();
  base.num_trees = 5;
  base.mode = GetParam();

  auto run = [&](int threads, const std::string& simd) {
    TrainParams p = base;
    p.num_threads = threads;
    p.simd = simd;
    GbdtTrainer trainer(p);
    return trainer.Train(train);
  };
  const GbdtModel a = run(2, "scalar");
  const GbdtModel b = run(1, "scalar");
  const GbdtModel c = run(4, "scalar");
  ASSERT_EQ(a.NumTrees(), b.NumTrees());
  for (size_t t = 0; t < a.NumTrees(); ++t) {
    EXPECT_TRUE(harp::testing::TreesEqual(a.tree(t), b.tree(t)))
        << "tree " << t << " differs across thread counts";
    EXPECT_TRUE(harp::testing::TreesEqual(a.tree(t), c.tree(t)))
        << "tree " << t << " differs across thread counts";
  }
  if (SimdSupported(SimdLevel::kAVX2)) {
    const GbdtModel v = run(2, "avx2");
    ASSERT_EQ(a.NumTrees(), v.NumTrees());
    for (size_t t = 0; t < a.NumTrees(); ++t) {
      EXPECT_TRUE(harp::testing::TreesEqual(a.tree(t), v.tree(t)))
          << "tree " << t << " differs between scalar and AVX2";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DpMpSync, QuantDeterminism,
                         ::testing::Values(ParallelMode::kDP,
                                           ParallelMode::kMP,
                                           ParallelMode::kSYNC),
                         [](const ::testing::TestParamInfo<ParallelMode>& i) {
                           return ToString(i.param);
                         });

}  // namespace
}  // namespace harp
