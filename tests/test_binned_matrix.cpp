// Unit tests for BinnedMatrix: bin correctness, offsets, layouts.
#include <gtest/gtest.h>

#include "common/random.h"
#include "data/binned_matrix.h"
#include "data/synthetic.h"
#include "parallel/thread_pool.h"

namespace harp {
namespace {

Dataset RandomDataset(uint32_t rows, uint32_t features, double density,
                      uint64_t seed) {
  Rng rng(seed);
  std::vector<float> values(static_cast<size_t>(rows) * features);
  std::vector<float> labels(rows);
  for (auto& v : values) {
    v = rng.Bernoulli(density)
            ? static_cast<float>(rng.Normal() * 3.0)
            : kMissingValue;
  }
  for (auto& l : labels) l = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  return Dataset::FromDense(rows, features, std::move(values),
                            std::move(labels));
}

TEST(BinnedMatrix, BinsMatchQuantileCuts) {
  const Dataset ds = RandomDataset(500, 7, 0.85, 3);
  QuantileCuts cuts = QuantileCuts::Compute(ds, 32);
  const BinnedMatrix matrix = BinnedMatrix::Build(ds, cuts);
  for (uint32_t r = 0; r < ds.num_rows(); ++r) {
    for (uint32_t f = 0; f < ds.num_features(); ++f) {
      EXPECT_EQ(matrix.Bin(r, f), cuts.BinFor(f, ds.At(r, f)))
          << "row " << r << " feature " << f;
    }
  }
}

TEST(BinnedMatrix, MissingEntriesAreBinZero) {
  const Dataset ds = RandomDataset(300, 4, 0.5, 5);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16));
  for (uint32_t r = 0; r < ds.num_rows(); ++r) {
    for (uint32_t f = 0; f < ds.num_features(); ++f) {
      if (IsMissing(ds.At(r, f))) {
        EXPECT_EQ(matrix.Bin(r, f), 0);
      } else {
        EXPECT_GE(matrix.Bin(r, f), 1);
      }
    }
  }
}

TEST(BinnedMatrix, OffsetsArePrefixSumsOfBinCounts) {
  const Dataset ds = RandomDataset(400, 6, 0.9, 7);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 24));
  uint32_t expected = 0;
  for (uint32_t f = 0; f < ds.num_features(); ++f) {
    EXPECT_EQ(matrix.BinOffset(f), expected);
    expected += matrix.NumBins(f);
  }
  EXPECT_EQ(matrix.TotalBins(), expected);
}

TEST(BinnedMatrix, RowBinsPointerMatchesBin) {
  const Dataset ds = RandomDataset(100, 5, 1.0, 11);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16));
  for (uint32_t r = 0; r < ds.num_rows(); ++r) {
    const uint8_t* row = matrix.RowBins(r);
    for (uint32_t f = 0; f < ds.num_features(); ++f) {
      EXPECT_EQ(row[f], matrix.Bin(r, f));
    }
  }
}

TEST(BinnedMatrix, ColumnMajorMatchesRowMajor) {
  const Dataset ds = RandomDataset(256, 9, 0.8, 13);
  BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 32));
  EXPECT_FALSE(matrix.HasColumnMajor());
  matrix.EnsureColumnMajor();
  ASSERT_TRUE(matrix.HasColumnMajor());
  for (uint32_t f = 0; f < ds.num_features(); ++f) {
    const uint8_t* col = matrix.ColBins(f);
    for (uint32_t r = 0; r < ds.num_rows(); ++r) {
      EXPECT_EQ(col[r], matrix.Bin(r, f));
    }
  }
}

TEST(BinnedMatrix, ParallelBuildMatchesSerial) {
  const Dataset ds = RandomDataset(2000, 12, 0.7, 17);
  QuantileCuts cuts = QuantileCuts::Compute(ds, 48);
  const BinnedMatrix serial = BinnedMatrix::Build(ds, cuts);
  ThreadPool pool(4);
  BinnedMatrix parallel = BinnedMatrix::Build(ds, cuts, &pool);
  parallel.EnsureColumnMajor(&pool);
  for (uint32_t r = 0; r < ds.num_rows(); ++r) {
    for (uint32_t f = 0; f < ds.num_features(); ++f) {
      ASSERT_EQ(serial.Bin(r, f), parallel.Bin(r, f));
      ASSERT_EQ(serial.Bin(r, f), parallel.ColBins(f)[r]);
    }
  }
}

TEST(BinnedMatrix, SparseDatasetBinsAgreeWithDense) {
  // Build the same logical data in CSR and dense form; bins must agree.
  SyntheticSpec spec;
  spec.rows = 400;
  spec.features = 30;
  spec.density = 0.4;
  spec.seed = 99;
  spec.sparse_storage = false;
  const Dataset dense = GenerateSynthetic(spec);
  spec.sparse_storage = true;
  const Dataset sparse = GenerateSynthetic(spec);
  ASSERT_EQ(dense.NumPresent(), sparse.NumPresent());

  QuantileCuts cuts = QuantileCuts::Compute(dense, 32);
  const BinnedMatrix a = BinnedMatrix::Build(dense, cuts);
  const BinnedMatrix b = BinnedMatrix::Build(sparse, cuts);
  for (uint32_t r = 0; r < dense.num_rows(); ++r) {
    for (uint32_t f = 0; f < dense.num_features(); ++f) {
      ASSERT_EQ(a.Bin(r, f), b.Bin(r, f)) << r << "," << f;
    }
  }
}

TEST(BinnedMatrix, OneBytePerEntry) {
  const Dataset ds = RandomDataset(128, 16, 1.0, 23);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 256));
  // Row-major bins dominate: ~1 byte per (row, feature) — the paper's
  // 1/4-of-float32 footprint claim.
  EXPECT_LT(matrix.MemoryBytes(), static_cast<size_t>(128 * 16 * 2));
}

}  // namespace
}  // namespace harp
