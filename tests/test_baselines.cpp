// Baseline trainers (XGB-Hist, LightGBM-like, XGB-Approx) must implement
// the SAME learning algorithm with different parallelization — so with
// deterministic tie-breaking they must produce trees IDENTICAL to the
// HarpGBDT reference under the matching growth policy. This cross-checks
// all four tree builders against each other.
#include <gtest/gtest.h>

#include "baselines/lightgbm_like.h"
#include "baselines/xgb_approx.h"
#include "baselines/xgb_hist.h"
#include "core/gbdt.h"
#include "core/metrics.h"
#include "data/synthetic.h"
#include "test_util.h"

namespace harp {
namespace {

using harp::testing::TreesEqual;

struct Fixture {
  Dataset train;
  BinnedMatrix matrix;
};

Fixture MakeFixture(uint32_t rows = 2000, uint64_t seed = 601) {
  SyntheticSpec spec;
  spec.rows = rows;
  spec.features = 10;
  spec.density = 0.85;
  spec.mean_distinct = 30;
  spec.margin_scale = 2.5;
  spec.seed = seed;
  Dataset train = GenerateSynthetic(spec);
  BinnedMatrix matrix =
      BinnedMatrix::Build(train, QuantileCuts::Compute(train, 32));
  matrix.EnsureColumnMajor();
  return Fixture{std::move(train), std::move(matrix)};
}

TrainParams Params(GrowPolicy policy, int trees = 4, int tree_size = 4) {
  TrainParams p;
  p.num_trees = trees;
  p.tree_size = tree_size;
  p.grow_policy = policy;
  p.num_threads = 2;
  p.min_child_weight = 0.5;
  return p;
}

GbdtModel HarpReference(Fixture& fx, const TrainParams& params) {
  TrainParams p = params;
  p.mode = ParallelMode::kDP;
  p.grow_policy = params.grow_policy;
  GbdtTrainer trainer(p);
  return trainer.TrainBinned(fx.matrix, fx.train.labels());
}

TEST(XgbHist, LeafwiseMatchesHarpReference) {
  Fixture fx = MakeFixture();
  const TrainParams p = Params(GrowPolicy::kLeafwise);
  const GbdtModel expected = HarpReference(fx, p);
  baselines::XgbHistTrainer baseline(p);
  const GbdtModel actual = baseline.TrainBinned(fx.matrix, fx.train.labels());
  ASSERT_EQ(expected.NumTrees(), actual.NumTrees());
  for (size_t t = 0; t < expected.NumTrees(); ++t) {
    EXPECT_TRUE(TreesEqual(expected.tree(t), actual.tree(t))) << "tree " << t;
  }
}

TEST(XgbHist, DepthwiseMatchesHarpReference) {
  Fixture fx = MakeFixture(1500, 603);
  const TrainParams p = Params(GrowPolicy::kDepthwise);
  const GbdtModel expected = HarpReference(fx, p);
  baselines::XgbHistTrainer baseline(p);
  const GbdtModel actual = baseline.TrainBinned(fx.matrix, fx.train.labels());
  for (size_t t = 0; t < expected.NumTrees(); ++t) {
    EXPECT_TRUE(TreesEqual(expected.tree(t), actual.tree(t))) << "tree " << t;
  }
}

TEST(LightGbm, MatchesHarpLeafwiseReference) {
  Fixture fx = MakeFixture(1800, 605);
  const TrainParams p = Params(GrowPolicy::kLeafwise);
  const GbdtModel expected = HarpReference(fx, p);
  baselines::LightGbmTrainer baseline(p);
  const GbdtModel actual = baseline.TrainBinned(fx.matrix, fx.train.labels());
  for (size_t t = 0; t < expected.NumTrees(); ++t) {
    EXPECT_TRUE(TreesEqual(expected.tree(t), actual.tree(t))) << "tree " << t;
  }
}

TEST(XgbApprox, MatchesHarpDepthwiseReference) {
  Fixture fx = MakeFixture(1600, 607);
  const TrainParams p = Params(GrowPolicy::kDepthwise);
  const GbdtModel expected = HarpReference(fx, p);
  baselines::XgbApproxTrainer baseline(p);
  const GbdtModel actual = baseline.TrainBinned(fx.matrix, fx.train.labels());
  for (size_t t = 0; t < expected.NumTrees(); ++t) {
    EXPECT_TRUE(TreesEqual(expected.tree(t), actual.tree(t))) << "tree " << t;
  }
}

TEST(Baselines, AllLearnTheData) {
  Fixture fx = MakeFixture(2500, 609);
  const std::vector<float>& labels = fx.train.labels();

  baselines::XgbHistTrainer xgb_leaf(Params(GrowPolicy::kLeafwise, 12));
  baselines::XgbHistTrainer xgb_depth(Params(GrowPolicy::kDepthwise, 12));
  baselines::LightGbmTrainer lgbm(Params(GrowPolicy::kLeafwise, 12));
  baselines::XgbApproxTrainer approx(Params(GrowPolicy::kDepthwise, 12));

  for (const GbdtModel& model :
       {xgb_leaf.TrainBinned(fx.matrix, labels),
        xgb_depth.TrainBinned(fx.matrix, labels),
        lgbm.TrainBinned(fx.matrix, labels),
        approx.TrainBinned(fx.matrix, labels)}) {
    const double auc = Auc(labels, model.Predict(fx.train));
    EXPECT_GT(auc, 0.85);
  }
}

TEST(Baselines, ThreadCountDoesNotChangeTrees) {
  Fixture fx = MakeFixture(1200, 611);
  TrainParams p = Params(GrowPolicy::kLeafwise, 3);
  p.num_threads = 1;
  baselines::XgbHistTrainer t1(p);
  const GbdtModel a = t1.TrainBinned(fx.matrix, fx.train.labels());
  p.num_threads = 4;
  baselines::XgbHistTrainer t4(p);
  const GbdtModel b = t4.TrainBinned(fx.matrix, fx.train.labels());
  for (size_t t = 0; t < a.NumTrees(); ++t) {
    EXPECT_TRUE(TreesEqual(a.tree(t), b.tree(t)));
  }
}

TEST(Baselines, XgbHistCountsLeafProportionalRegions) {
  // The leaf-by-leaf design's signature: parallel regions grow with the
  // number of leaves (the paper's O(2^D) synchronization argument).
  Fixture fx = MakeFixture(2000, 613);
  auto regions_for = [&](int tree_size) {
    TrainParams p = Params(GrowPolicy::kLeafwise, 1, tree_size);
    TrainStats stats;
    baselines::XgbHistTrainer trainer(p);
    trainer.TrainBinned(fx.matrix, fx.train.labels(), &stats);
    return std::make_pair(stats.sync.parallel_regions, stats.leaves);
  };
  const auto [regions_small, leaves_small] = regions_for(3);
  const auto [regions_large, leaves_large] = regions_for(6);
  ASSERT_GT(leaves_large, leaves_small);
  EXPECT_GT(regions_large, regions_small * 3);
}

TEST(Baselines, XgbApproxRejectsLeafwise) {
  Fixture fx = MakeFixture(300, 615);
  TrainParams p = Params(GrowPolicy::kLeafwise, 1);
  baselines::XgbApproxTrainer trainer(p);
  EXPECT_DEATH(trainer.TrainBinned(fx.matrix, fx.train.labels()),
               "depthwise only");
}

TEST(Baselines, LightGbmRequiresColumnMajor) {
  SyntheticSpec spec;
  spec.rows = 100;
  spec.features = 4;
  const Dataset ds = GenerateSynthetic(spec);
  BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16));
  ThreadPool pool(1);
  const TrainParams p = Params(GrowPolicy::kLeafwise, 1);
  EXPECT_DEATH(baselines::LightGbmBuilder(matrix, p, pool), "column-major");
}

}  // namespace
}  // namespace harp
