// Unit tests for src/common: stats, string utilities, env config, RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <vector>

#include "common/aligned.h"
#include "common/env.h"
#include "common/file_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace harp {
namespace {

// ---------- RunningStats ----------

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.Count(), 0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.CV(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.Count(), 8);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.Stddev(), 2.0, 1e-12);  // classic population-stddev example
  EXPECT_NEAR(s.CV(), 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
}

TEST(RunningStats, ConstantSequenceCVZero) {
  RunningStats s;
  for (int i = 0; i < 100; ++i) s.Add(3.0);
  EXPECT_NEAR(s.CV(), 0.0, 1e-12);
}

// ---------- Percentile / means ----------

TEST(Percentile, EndpointsAndMedian) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 3.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.25), 2.5);
}

TEST(MeanTest, Basic) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(GeometricMeanTest, Basic) {
  EXPECT_NEAR(GeometricMean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(GeometricMean({3.0, 3.0, 3.0}), 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(GeometricMean({}), 0.0);
}

// ---------- string_util ----------

TEST(Split, KeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, SingleField) {
  const auto parts = Split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(SplitWhitespaceTest, DropsRuns) {
  const auto parts = SplitWhitespace("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitWhitespaceTest, EmptyInput) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(TrimTest, Basic) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("\r\n\t"), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(ParseDoubleTest, Valid) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  // Hex floats roundtrip (model IO relies on this).
  EXPECT_TRUE(ParseDouble("0x1.8p+1", &v));
  EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(ParseDoubleTest, Invalid) {
  double v = 7.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_DOUBLE_EQ(v, 7.0);  // untouched on failure
}

TEST(ParseFloatTest, Valid) {
  float v = 0.0f;
  EXPECT_TRUE(ParseFloat("3.5", &v));
  EXPECT_FLOAT_EQ(v, 3.5f);
  EXPECT_TRUE(ParseFloat("-1e3", &v));
  EXPECT_FLOAT_EQ(v, -1000.0f);
  EXPECT_TRUE(ParseFloat("0.001953125", &v));
  EXPECT_FLOAT_EQ(v, 0.001953125f);
  EXPECT_TRUE(ParseFloat("nan", &v));
  EXPECT_TRUE(std::isnan(v));
  EXPECT_TRUE(ParseFloat("inf", &v));
  EXPECT_TRUE(std::isinf(v));
}

TEST(ParseFloatTest, FallbackForms) {
  // Forms std::from_chars rejects but strtod accepts; ParseFloat must
  // accept them so it behaves exactly like ParseDouble-then-cast.
  float v = 0.0f;
  EXPECT_TRUE(ParseFloat("+1.5", &v));
  EXPECT_FLOAT_EQ(v, 1.5f);
  EXPECT_TRUE(ParseFloat("0x10", &v));
  EXPECT_FLOAT_EQ(v, 16.0f);
  EXPECT_TRUE(ParseFloat("0x1.8p+1", &v));
  EXPECT_FLOAT_EQ(v, 3.0f);
}

TEST(ParseFloatTest, Invalid) {
  float v = 7.0f;
  EXPECT_FALSE(ParseFloat("", &v));
  EXPECT_FALSE(ParseFloat("abc", &v));
  EXPECT_FALSE(ParseFloat("1.5x", &v));
  EXPECT_FALSE(ParseFloat("1e99999", &v));  // overflow, as in ParseDouble
  EXPECT_FLOAT_EQ(v, 7.0f);  // untouched on failure
}

TEST(ParseFloatTest, AgreesWithParseDouble) {
  const char* cases[] = {"0",     "-0.0",    "1",        "123.456",
                         "1e-8",  "-2.5E+6", "99999999", ".5",
                         "5.",    "1e308",   "4.9e-324", "2.2250738585072014e-308",
                         "abc",   "1..2",    "--1",      "1 2",
                         "1e",    "e5",      "+inf",     "-nan"};
  for (const char* text : cases) {
    double d = 0.0;
    float f = 0.0f;
    const bool ok_d = ParseDouble(text, &d);
    const bool ok_f = ParseFloat(text, &f);
    EXPECT_EQ(ok_d, ok_f) << "disagree on '" << text << "'";
    if (ok_d && ok_f) {
      const float expected = static_cast<float>(d);
      const bool both_nan = std::isnan(expected) && std::isnan(f);
      EXPECT_TRUE(both_nan || expected == f)
          << "value mismatch on '" << text << "': " << expected << " vs "
          << f;
    }
  }
}

TEST(ParseIntTest, ValidAndInvalid) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt("4.2", &v));
  EXPECT_FALSE(ParseInt("", &v));
  EXPECT_FALSE(ParseInt("12a", &v));
}

TEST(StrFormatTest, Formats) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(HumanUnits, Duration) {
  EXPECT_EQ(HumanDuration(2.5), "2.500s");
  EXPECT_EQ(HumanDuration(0.0025), "2.50ms");
  EXPECT_EQ(HumanDuration(2.5e-6), "2.5us");
  EXPECT_EQ(HumanDuration(25e-9), "25.0ns");
}

TEST(HumanUnits, Bytes) {
  EXPECT_EQ(HumanBytes(512), "512B");
  EXPECT_EQ(HumanBytes(2048), "2.0KB");
  EXPECT_EQ(HumanBytes(3.5 * 1024 * 1024), "3.5MB");
}

// ---------- file_util ----------

TEST(FileUtil, RoundtripIncludingBinary) {
  const std::string path = "/tmp/harp_test_file_util.bin";
  std::string content = "line1\nline2\r\n";
  content += '\0';
  content += "after-nul";
  std::string error;
  ASSERT_TRUE(WriteStringToFile(path, content, &error)) << error;
  std::string loaded;
  ASSERT_TRUE(ReadFileToString(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded, content);
  std::remove(path.c_str());
}

TEST(FileUtil, EmptyFile) {
  const std::string path = "/tmp/harp_test_file_util_empty.bin";
  std::string error;
  ASSERT_TRUE(WriteStringToFile(path, "", &error)) << error;
  std::string loaded = "stale";
  ASSERT_TRUE(ReadFileToString(path, &loaded, &error)) << error;
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(FileUtil, MissingFileFails) {
  std::string loaded;
  std::string error;
  EXPECT_FALSE(
      ReadFileToString("/tmp/does_not_exist_harp_file_util", &loaded, &error));
  EXPECT_FALSE(error.empty());
}

TEST(FileUtil, UnwritableDirFails) {
  std::string error;
  EXPECT_FALSE(WriteStringToFile("/nonexistent_dir/x.txt", "data", &error));
  EXPECT_FALSE(error.empty());
}

// ---------- env ----------

TEST(Env, IntFallbackAndParse) {
  ::unsetenv("HARP_TEST_ENV_INT");
  EXPECT_EQ(GetEnvInt("HARP_TEST_ENV_INT", 5), 5);
  ::setenv("HARP_TEST_ENV_INT", "12", 1);
  EXPECT_EQ(GetEnvInt("HARP_TEST_ENV_INT", 5), 12);
  ::setenv("HARP_TEST_ENV_INT", "junk", 1);
  EXPECT_EQ(GetEnvInt("HARP_TEST_ENV_INT", 5), 5);
  ::unsetenv("HARP_TEST_ENV_INT");
}

TEST(Env, DoubleAndString) {
  ::setenv("HARP_TEST_ENV_D", "0.25", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("HARP_TEST_ENV_D", 1.0), 0.25);
  ::unsetenv("HARP_TEST_ENV_D");
  EXPECT_DOUBLE_EQ(GetEnvDouble("HARP_TEST_ENV_D", 1.0), 1.0);
  EXPECT_EQ(GetEnvString("HARP_TEST_ENV_S", "dflt"), "dflt");
  ::setenv("HARP_TEST_ENV_S", "val", 1);
  EXPECT_EQ(GetEnvString("HARP_TEST_ENV_S", "dflt"), "val");
  ::unsetenv("HARP_TEST_ENV_S");
}

// ---------- random ----------

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextBelowBoundsAndCoverage) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBelow(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit in 1000 draws
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.Add(rng.Normal());
  EXPECT_NEAR(s.Mean(), 0.0, 0.02);
  EXPECT_NEAR(s.Stddev(), 1.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.Add(rng.Exponential(2.0));
  EXPECT_NEAR(s.Mean(), 0.5, 0.02);
}

// ---------- aligned ----------

TEST(Aligned, VectorIsCacheLineAligned) {
  AlignedVector<double> v(100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % kCacheLineBytes, 0u);
}

TEST(Aligned, SurvivesGrowth) {
  AlignedVector<int> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % kCacheLineBytes, 0u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(v[static_cast<size_t>(i)], i);
}

// ---------- latency recorder ----------

TEST(LatencyRecorder, EmptyIsZero) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.Count(), 0);
  EXPECT_EQ(rec.MinNs(), 0);
  EXPECT_EQ(rec.MaxNs(), 0);
  EXPECT_EQ(rec.MeanNs(), 0.0);
  EXPECT_EQ(rec.PercentileNs(0.99), 0.0);
}

TEST(LatencyRecorder, SmallValuesAreExact) {
  // Below 2^kSubBits every value has its own bucket: percentiles are
  // exact, not approximations.
  LatencyRecorder rec;
  for (int64_t v = 1; v <= 20; ++v) rec.Record(v);
  EXPECT_EQ(rec.Count(), 20);
  EXPECT_EQ(rec.MinNs(), 1);
  EXPECT_EQ(rec.MaxNs(), 20);
  EXPECT_DOUBLE_EQ(rec.MeanNs(), 10.5);
  EXPECT_EQ(rec.PercentileNs(0.0), 1.0);
  EXPECT_EQ(rec.PercentileNs(0.5), 10.0);
  EXPECT_EQ(rec.PercentileNs(1.0), 20.0);
}

TEST(LatencyRecorder, LogBucketsKeepRelativeErrorBounded) {
  // One octave spans 32 sub-buckets, so any reconstructed percentile is
  // within ~1/32 of the true value.
  LatencyRecorder rec;
  std::vector<int64_t> values;
  int64_t v = 100;
  for (int i = 0; i < 2000; ++i) {
    values.push_back(v);
    rec.Record(v);
    v += 997;  // spread across many octaves
  }
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = values[static_cast<size_t>(
        q * static_cast<double>(values.size() - 1))];
    const double approx = rec.PercentileNs(q);
    EXPECT_NEAR(approx, exact, exact * 0.05) << "q=" << q;
  }
  // Extremes clamp to observed min/max exactly.
  EXPECT_EQ(rec.PercentileNs(0.0), static_cast<double>(values.front()));
  EXPECT_EQ(rec.PercentileNs(1.0), static_cast<double>(values.back()));
}

TEST(LatencyRecorder, MergeMatchesCombinedStream) {
  LatencyRecorder a;
  LatencyRecorder b;
  LatencyRecorder all;
  for (int i = 1; i <= 500; ++i) {
    const int64_t v = static_cast<int64_t>(i) * 37;
    (i % 2 == 0 ? a : b).Record(v);
    all.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), all.Count());
  EXPECT_EQ(a.MinNs(), all.MinNs());
  EXPECT_EQ(a.MaxNs(), all.MaxNs());
  EXPECT_DOUBLE_EQ(a.MeanNs(), all.MeanNs());
  for (double q : {0.1, 0.5, 0.99}) {
    EXPECT_DOUBLE_EQ(a.PercentileNs(q), all.PercentileNs(q));
  }
  a.Reset();
  EXPECT_EQ(a.Count(), 0);
  EXPECT_EQ(a.MaxNs(), 0);
}

TEST(LatencyRecorder, SummaryMentionsLabelAndCount) {
  LatencyRecorder rec;
  for (int i = 0; i < 100; ++i) rec.Record(1000 * (i + 1));
  const std::string line = rec.Summary("ticks");
  EXPECT_NE(line.find("ticks"), std::string::npos);
  EXPECT_NE(line.find("n=100"), std::string::npos);
  EXPECT_NE(line.find("p99"), std::string::npos);
}

// ---------- timer ----------

TEST(Timer, AccumulatesMonotonically) {
  AccumTimer t;
  t.Start();
  t.Stop();
  const int64_t first = t.TotalNs();
  EXPECT_GE(first, 0);
  t.AddNs(1000);
  EXPECT_EQ(t.TotalNs(), first + 1000);
  EXPECT_EQ(t.Count(), 2);
  t.Reset();
  EXPECT_EQ(t.TotalNs(), 0);
}

TEST(Timer, ScopedTimerAdds) {
  AccumTimer t;
  { ScopedTimer scope(t); }
  EXPECT_GE(t.TotalNs(), 0);
  EXPECT_EQ(t.Count(), 1);
}

}  // namespace
}  // namespace harp
