// Tests for the synthetic generators, including verification that every
// Table III preset reproduces its published shape statistics (N, M, S, CV).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/binned_matrix.h"
#include "data/dataset_stats.h"
#include "data/synthetic.h"
#include "parallel/thread_pool.h"

namespace harp {
namespace {

DatasetShape ShapeOf(const SyntheticSpec& spec) {
  const Dataset ds = GenerateSynthetic(spec);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 256));
  return ComputeShape(spec.name, ds, matrix);
}

TEST(Synthetic, DeterministicForSeed) {
  SyntheticSpec spec;
  spec.rows = 500;
  spec.features = 10;
  spec.density = 0.8;
  const Dataset a = GenerateSynthetic(spec);
  const Dataset b = GenerateSynthetic(spec);
  ASSERT_EQ(a.num_rows(), b.num_rows());
  EXPECT_EQ(a.labels(), b.labels());
  EXPECT_EQ(a.dense_values().size(), b.dense_values().size());
  for (size_t i = 0; i < a.dense_values().size(); ++i) {
    const float x = a.dense_values()[i];
    const float y = b.dense_values()[i];
    EXPECT_TRUE((IsMissing(x) && IsMissing(y)) || x == y);
  }
}

TEST(Synthetic, ThreadCountDoesNotChangeData) {
  SyntheticSpec spec;
  spec.rows = 1000;
  spec.features = 8;
  spec.density = 0.9;
  const Dataset serial = GenerateSynthetic(spec, nullptr);
  ThreadPool pool(4);
  const Dataset parallel = GenerateSynthetic(spec, &pool);
  EXPECT_EQ(serial.labels(), parallel.labels());
  for (size_t i = 0; i < serial.dense_values().size(); ++i) {
    const float x = serial.dense_values()[i];
    const float y = parallel.dense_values()[i];
    EXPECT_TRUE((IsMissing(x) && IsMissing(y)) || x == y);
  }
}

TEST(Synthetic, SeedChangesData) {
  SyntheticSpec spec;
  spec.rows = 200;
  spec.features = 4;
  const Dataset a = GenerateSynthetic(spec);
  spec.seed += 1;
  const Dataset b = GenerateSynthetic(spec);
  EXPECT_NE(a.labels(), b.labels());
}

TEST(Synthetic, LabelsAreBinary) {
  SyntheticSpec spec;
  spec.rows = 300;
  const Dataset ds = GenerateSynthetic(spec);
  int positives = 0;
  for (float y : ds.labels()) {
    EXPECT_TRUE(y == 0.0f || y == 1.0f);
    positives += y > 0.5f ? 1 : 0;
  }
  // Roughly balanced classes.
  EXPECT_GT(positives, 60);
  EXPECT_LT(positives, 240);
}

TEST(Synthetic, RegressionLabelsContinuous) {
  SyntheticSpec spec;
  spec.rows = 300;
  spec.label = LabelKind::kRegression;
  const Dataset ds = GenerateSynthetic(spec);
  int non_binary = 0;
  for (float y : ds.labels()) {
    if (y != 0.0f && y != 1.0f) ++non_binary;
  }
  EXPECT_GT(non_binary, 250);
}

TEST(Synthetic, DensityControlsSparseness) {
  SyntheticSpec spec;
  spec.rows = 4000;
  spec.features = 20;
  spec.density = 0.35;
  const Dataset ds = GenerateSynthetic(spec);
  EXPECT_NEAR(ds.Sparseness(), 0.35, 0.02);
}

TEST(Synthetic, SparseStorageMatchesDensity) {
  SyntheticSpec spec;
  spec.rows = 2000;
  spec.features = 50;
  spec.density = 0.25;
  spec.sparse_storage = true;
  const Dataset ds = GenerateSynthetic(spec);
  EXPECT_EQ(ds.layout(), Dataset::Layout::kSparse);
  EXPECT_NEAR(ds.Sparseness(), 0.25, 0.02);
}

TEST(Synthetic, ResponseEncodedFeatureCorrelatesWithLabel) {
  SyntheticSpec spec;
  spec.rows = 3000;
  spec.features = 10;
  spec.response_encoded_feature = true;
  const Dataset ds = GenerateSynthetic(spec);
  // Feature 0 (an exponential latent driving the label score) must be
  // strongly shifted between the classes.
  double pos_sum = 0.0;
  double neg_sum = 0.0;
  int pos = 0;
  int neg = 0;
  for (uint32_t r = 0; r < ds.num_rows(); ++r) {
    const float v = ds.At(r, 0);
    ASSERT_FALSE(IsMissing(v));
    if (ds.labels()[r] > 0.5f) {
      pos_sum += v;
      ++pos;
    } else {
      neg_sum += v;
      ++neg;
    }
  }
  EXPECT_GT(pos_sum / pos, neg_sum / neg + 1.0);
}

// ---- query-grouped ranking generator ----

TEST(RankingSynthetic, GroupStructureIsValid) {
  RankingSpec spec;
  spec.num_queries = 50;
  const Dataset ds = GenerateRankingSynthetic(spec);
  ASSERT_TRUE(ds.has_groups());
  EXPECT_EQ(ds.num_groups(), 50u);
  const std::vector<uint32_t>& groups = ds.group_ptr();
  EXPECT_EQ(groups.front(), 0u);
  EXPECT_EQ(groups.back(), ds.num_rows());
  for (size_t g = 0; g + 1 < groups.size(); ++g) {
    const uint32_t docs = groups[g + 1] - groups[g];
    EXPECT_GE(docs, spec.min_docs);
    EXPECT_LE(docs, spec.max_docs);
  }
}

TEST(RankingSynthetic, GradesCoverTheConfiguredRange) {
  RankingSpec spec;
  spec.num_queries = 80;
  const Dataset ds = GenerateRankingSynthetic(spec);
  std::vector<int> counts(static_cast<size_t>(spec.max_relevance) + 1, 0);
  for (float y : ds.labels()) {
    ASSERT_GE(y, 0.0f);
    ASSERT_LE(y, static_cast<float>(spec.max_relevance));
    ASSERT_EQ(y, std::floor(y));  // integer grades
    counts[static_cast<size_t>(y)]++;
  }
  // Within-query quantile grading: every grade appears.
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(RankingSynthetic, DeterministicAndThreadCountInvariant) {
  RankingSpec spec;
  spec.num_queries = 60;
  const Dataset serial = GenerateRankingSynthetic(spec, nullptr);
  ThreadPool pool(4);
  const Dataset parallel = GenerateRankingSynthetic(spec, &pool);
  const Dataset repeat = GenerateRankingSynthetic(spec, &pool);
  EXPECT_EQ(serial.labels(), parallel.labels());
  EXPECT_EQ(serial.group_ptr(), parallel.group_ptr());
  EXPECT_EQ(serial.dense_values(), parallel.dense_values());
  EXPECT_EQ(parallel.labels(), repeat.labels());
  EXPECT_EQ(parallel.dense_values(), repeat.dense_values());
}

TEST(RankingSynthetic, SeedChangesDataAndGradesAreLearnable) {
  RankingSpec spec;
  spec.num_queries = 40;
  const Dataset a = GenerateRankingSynthetic(spec);
  spec.seed += 1;
  const Dataset b = GenerateRankingSynthetic(spec);
  EXPECT_NE(a.labels(), b.labels());
  // Grades must correlate with the features: the top half of each query's
  // latent utility got the higher grades, and utility is a linear score
  // of the active features, so a trivial within-query check suffices —
  // labels are not constant within queries of >= 2 docs.
  int varied_queries = 0;
  const std::vector<uint32_t>& groups = a.group_ptr();
  for (size_t g = 0; g + 1 < groups.size(); ++g) {
    float lo = 1e9f;
    float hi = -1e9f;
    for (uint32_t r = groups[g]; r < groups[g + 1]; ++r) {
      lo = std::min(lo, a.labels()[r]);
      hi = std::max(hi, a.labels()[r]);
    }
    if (hi > lo) ++varied_queries;
  }
  EXPECT_GT(varied_queries, static_cast<int>(a.num_groups() * 3 / 4));
}

// ---- Table III preset verification (scaled rows; M, S, CV must match) ----

struct PresetCase {
  const char* name;
  SyntheticSpec spec;
  uint32_t expect_features;
  double expect_s;
  double expect_cv;
  double cv_tol;
};

class PresetShape : public ::testing::TestWithParam<PresetCase> {};

TEST_P(PresetShape, MatchesTableIII) {
  const PresetCase& c = GetParam();
  const DatasetShape shape = ShapeOf(c.spec);
  EXPECT_EQ(shape.features, c.expect_features);
  EXPECT_NEAR(shape.sparseness, c.expect_s, 0.03);
  EXPECT_NEAR(shape.bin_cv, c.expect_cv, c.cv_tol);
}

// Scales chosen so each preset stays under ~1s to generate+bin in tests.
INSTANTIATE_TEST_SUITE_P(
    TableIII, PresetShape,
    ::testing::Values(
        PresetCase{"SYNSET", SynsetSpec(0.1), 128, 1.00, 0.00, 0.10},
        PresetCase{"HIGGS", HiggsSpec(0.15), 28, 0.92, 0.40, 0.20},
        PresetCase{"AIRLINE", AirlineSpec(0.06), 8, 1.00, 0.89, 0.15},
        PresetCase{"CRITEO", CriteoSpec(0.15), 65, 0.96, 0.58, 0.25},
        PresetCase{"YFCC", YfccSpec(0.25), 4096, 0.31, 0.06, 0.10}),
    [](const ::testing::TestParamInfo<PresetCase>& info) {
      return info.param.name;
    });

TEST(DatasetShapeReport, FormatsRow) {
  SyntheticSpec spec;
  spec.rows = 100;
  spec.features = 4;
  const DatasetShape shape = ShapeOf(spec);
  const std::string header = ShapeHeader();
  const std::string row = FormatShapeRow(shape);
  EXPECT_NE(header.find("dataset"), std::string::npos);
  EXPECT_NE(row.find("synthetic"), std::string::npos);
}

}  // namespace
}  // namespace harp
