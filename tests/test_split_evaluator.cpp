// Tests for the Eq. 2 / Eq. 3 arithmetic and histogram split enumeration,
// including a brute-force cross-check over raw rows.
#include <gtest/gtest.h>

#include <cmath>

#include "core/split_evaluator.h"
#include "test_util.h"

namespace harp {
namespace {

using harp::testing::AllRows;
using harp::testing::MakeDataset;
using harp::testing::MakeGradients;
using harp::testing::NaiveHist;
using harp::testing::SumGh;

TrainParams BaseParams() {
  TrainParams p;
  p.reg_lambda = 1.0;
  p.min_split_loss = 0.0;
  p.min_child_weight = 0.0;
  p.learning_rate = 0.1;
  return p;
}

TEST(SplitEvaluator, LeafWeightFormula) {
  const SplitEvaluator eval(BaseParams());
  const GHPair sum{4.0, 3.0};
  EXPECT_DOUBLE_EQ(eval.RawLeafWeight(sum), -4.0 / (3.0 + 1.0));
  EXPECT_DOUBLE_EQ(eval.LeafValue(sum), 0.1 * -1.0);
}

TEST(SplitEvaluator, GainFormulaHandComputed) {
  TrainParams p = BaseParams();
  p.min_split_loss = 0.5;  // gamma
  const SplitEvaluator eval(p);
  const GHPair left{2.0, 1.0};
  const GHPair right{-3.0, 2.0};
  const GHPair parent = left + right;
  // 0.5*(4/2 + 9/3 - 1/4) - 0.5
  const double expected = 0.5 * (2.0 + 3.0 - 0.25) - 0.5;
  EXPECT_NEAR(eval.SplitGain(parent, left, right), expected, 1e-12);
}

TEST(SplitEvaluator, GammaShiftsGain) {
  TrainParams p = BaseParams();
  const GHPair left{2.0, 1.0};
  const GHPair right{-1.0, 1.5};
  const GHPair parent = left + right;
  p.min_split_loss = 0.0;
  const double g0 = SplitEvaluator(p).SplitGain(parent, left, right);
  p.min_split_loss = 1.0;
  const double g1 = SplitEvaluator(p).SplitGain(parent, left, right);
  EXPECT_NEAR(g0 - g1, 1.0, 1e-12);
}

TEST(SplitEvaluator, MinChildWeightBlocksSplits) {
  // One feature, two bins, tiny hessian on one side.
  const Dataset ds = Dataset::FromDense(
      4, 1, {0.0f, 0.0f, 0.0f, 1.0f}, {0, 0, 0, 1});
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 256));
  std::vector<GradientPair> gh{{1.0f, 0.4f}, {1.0f, 0.4f},
                               {1.0f, 0.4f}, {-3.0f, 0.1f}};
  const auto rows = AllRows(4);
  const auto hist = NaiveHist(matrix, gh, rows);
  const GHPair total = SumGh(gh, rows);

  TrainParams p = BaseParams();
  p.min_child_weight = 0.0;
  const SplitInfo allowed = SplitEvaluator(p).FindBestSplit(
      matrix, hist.data(), total, 0, 1);
  EXPECT_TRUE(allowed.IsValid());

  p.min_child_weight = 0.5;  // right child h = 0.1 < 0.5 -> rejected
  const SplitInfo blocked = SplitEvaluator(p).FindBestSplit(
      matrix, hist.data(), total, 0, 1);
  EXPECT_FALSE(blocked.IsValid());
}

TEST(SplitEvaluator, PicksObviousSplit) {
  // Feature 0 separates gradients perfectly; feature 1 is noise.
  const Dataset ds = Dataset::FromDense(
      6, 2,
      {0.0f, 5.0f, 0.0f, 6.0f, 0.0f, 5.0f,
       1.0f, 6.0f, 1.0f, 5.0f, 1.0f, 6.0f},
      {0, 0, 0, 1, 1, 1});
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 256));
  std::vector<GradientPair> gh(6);
  for (int i = 0; i < 6; ++i) {
    gh[static_cast<size_t>(i)] = {i < 3 ? 1.0f : -1.0f, 1.0f};
  }
  const auto rows = AllRows(6);
  const auto hist = NaiveHist(matrix, gh, rows);
  const SplitInfo split = SplitEvaluator(BaseParams()).FindBestSplit(
      matrix, hist.data(), SumGh(gh, rows), 0, 2);
  ASSERT_TRUE(split.IsValid());
  EXPECT_EQ(split.feature, 0u);
  EXPECT_EQ(split.bin, 1u);  // first bin of feature 0 holds value 0.0
  EXPECT_NEAR(split.left_sum.g, 3.0, 1e-12);
  EXPECT_NEAR(split.right_sum.g, -3.0, 1e-12);
}

TEST(SplitEvaluator, ChildSumsAddUpToParent) {
  const Dataset ds = MakeDataset(300, 5, 0.8, 41);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16));
  const auto gh = MakeGradients(300, 42);
  const auto rows = AllRows(300);
  const auto hist = NaiveHist(matrix, gh, rows);
  const GHPair total = SumGh(gh, rows);
  const SplitInfo split = SplitEvaluator(BaseParams()).FindBestSplit(
      matrix, hist.data(), total, 0, 5);
  ASSERT_TRUE(split.IsValid());
  EXPECT_NEAR(split.left_sum.g + split.right_sum.g, total.g, 1e-9);
  EXPECT_NEAR(split.left_sum.h + split.right_sum.h, total.h, 1e-9);
}

// Brute force over raw rows: for every (feature, bin, default direction),
// partition rows directly and compute the gain; the evaluator must find the
// same maximum gain.
TEST(SplitEvaluator, MatchesBruteForceEnumeration) {
  TrainParams p = BaseParams();
  p.min_split_loss = 0.1;
  p.min_child_weight = 0.2;
  const SplitEvaluator eval(p);

  for (uint64_t seed : {1u, 2u, 3u}) {
    const Dataset ds = MakeDataset(120, 4, 0.75, seed, /*distinct=*/8);
    const BinnedMatrix matrix =
        BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 256));
    const auto gh = MakeGradients(120, seed + 100);
    const auto rows = AllRows(120);
    const auto hist = NaiveHist(matrix, gh, rows);
    const GHPair total = SumGh(gh, rows);

    double best_gain = 0.0;
    for (uint32_t f = 0; f < matrix.num_features(); ++f) {
      for (uint32_t bin = 1; bin + 1 < matrix.NumBins(f); ++bin) {
        for (bool default_left : {false, true}) {
          GHPair left;
          for (uint32_t rid : rows) {
            const uint8_t b = matrix.Bin(rid, f);
            const bool goes_left =
                b == 0 ? default_left : b <= bin;
            if (goes_left) left.Add(gh[rid].g, gh[rid].h);
          }
          const GHPair right = total - left;
          if (left.h < p.min_child_weight || right.h < p.min_child_weight) {
            continue;
          }
          best_gain =
              std::max(best_gain, eval.SplitGain(total, left, right));
        }
      }
    }

    const SplitInfo found = eval.FindBestSplit(matrix, hist.data(), total, 0,
                                               matrix.num_features());
    if (best_gain <= 0.0) {
      EXPECT_FALSE(found.IsValid());
    } else {
      ASSERT_TRUE(found.IsValid());
      EXPECT_NEAR(found.gain, best_gain, 1e-9) << "seed " << seed;
    }
  }
}

// Partitioning the feature range must not change the merged winner.
TEST(SplitEvaluator, FeatureRangeMergeIsDeterministic) {
  const Dataset ds = MakeDataset(200, 8, 0.9, 7);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 32));
  const auto gh = MakeGradients(200, 8);
  const auto rows = AllRows(200);
  const auto hist = NaiveHist(matrix, gh, rows);
  const GHPair total = SumGh(gh, rows);
  const SplitEvaluator eval(BaseParams());

  const SplitInfo whole =
      eval.FindBestSplit(matrix, hist.data(), total, 0, 8);
  for (uint32_t chunk : {1u, 2u, 3u, 5u}) {
    SplitInfo merged;
    for (uint32_t f = 0; f < 8; f += chunk) {
      const SplitInfo part = eval.FindBestSplit(matrix, hist.data(), total,
                                                f, std::min(8u, f + chunk));
      if (part.BetterThan(merged)) merged = part;
    }
    EXPECT_EQ(merged.feature, whole.feature);
    EXPECT_EQ(merged.bin, whole.bin);
    EXPECT_EQ(merged.default_left, whole.default_left);
    EXPECT_DOUBLE_EQ(merged.gain, whole.gain);
  }
}

// Verbatim copy of the pre-prefix-scan FindBestSplit: a separate
// present_total accumulation pass plus a per-bin missing check. The
// rewritten single-pass version must reproduce it BIT FOR BIT — the prefix
// array preserves the exact left-to-right accumulation order, so every
// intermediate double is the same.
SplitInfo ReferenceFindBestSplit(const SplitEvaluator& eval,
                                 const BinnedMatrix& matrix,
                                 const GHPair* hist, const GHPair& node_sum,
                                 uint32_t feature_begin,
                                 uint32_t feature_end) {
  SplitInfo best;
  for (uint32_t f = feature_begin; f < feature_end; ++f) {
    const uint32_t offset = matrix.BinOffset(f);
    const uint32_t num_bins = matrix.NumBins(f);
    if (num_bins < 3) continue;
    const GHPair missing = hist[offset];

    GHPair present_total;
    for (uint32_t b = 1; b < num_bins; ++b) present_total += hist[offset + b];

    GHPair left_present;
    for (uint32_t b = 1; b + 1 < num_bins; ++b) {
      left_present += hist[offset + b];
      const GHPair right_present = present_total - left_present;

      {
        const GHPair left = left_present;
        const GHPair right = node_sum - left;
        if (eval.SatisfiesChildWeight(left) &&
            eval.SatisfiesChildWeight(right)) {
          const double gain = eval.SplitGain(node_sum, left, right);
          SplitInfo candidate{gain, f, b, /*default_left=*/false, left, right};
          if (candidate.IsValid() && candidate.BetterThan(best)) {
            best = candidate;
          }
        }
      }
      if (missing.g != 0.0 || missing.h != 0.0) {
        const GHPair right = right_present;
        const GHPair left = node_sum - right;
        if (eval.SatisfiesChildWeight(left) &&
            eval.SatisfiesChildWeight(right)) {
          const double gain = eval.SplitGain(node_sum, left, right);
          SplitInfo candidate{gain, f, b, /*default_left=*/true, left, right};
          if (candidate.IsValid() && candidate.BetterThan(best)) {
            best = candidate;
          }
        }
      }
    }
  }
  return best;
}

TEST(SplitEvaluator, SinglePassMatchesTwoPassReferenceBitwise) {
  TrainParams p = BaseParams();
  p.min_child_weight = 0.2;
  const SplitEvaluator eval(p);

  // density 1.0 exercises the hoisted no-missing fast path; the sparse
  // cases exercise the default-left branch with real missing mass.
  struct Case {
    double density;
    uint64_t seed;
  };
  for (const Case& c : {Case{1.0, 51}, Case{0.75, 52}, Case{0.4, 53}}) {
    const Dataset ds = MakeDataset(400, 7, c.density, c.seed, /*distinct=*/12);
    const BinnedMatrix matrix =
        BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 32));
    const auto gh = MakeGradients(400, c.seed + 100);
    const auto rows = AllRows(400);
    const auto hist = NaiveHist(matrix, gh, rows);
    const GHPair total = SumGh(gh, rows);

    const SplitInfo got = eval.FindBestSplit(matrix, hist.data(), total, 0,
                                             matrix.num_features());
    const SplitInfo want = ReferenceFindBestSplit(
        eval, matrix, hist.data(), total, 0, matrix.num_features());

    ASSERT_EQ(got.IsValid(), want.IsValid()) << "density " << c.density;
    // Bitwise: == on doubles, not NEAR. Same accumulation order, same bits.
    EXPECT_EQ(got.gain, want.gain);
    EXPECT_EQ(got.feature, want.feature);
    EXPECT_EQ(got.bin, want.bin);
    EXPECT_EQ(got.default_left, want.default_left);
    EXPECT_EQ(got.left_sum.g, want.left_sum.g);
    EXPECT_EQ(got.left_sum.h, want.left_sum.h);
    EXPECT_EQ(got.right_sum.g, want.right_sum.g);
    EXPECT_EQ(got.right_sum.h, want.right_sum.h);
  }
}

TEST(SplitInfoTest, BetterThanIsStrictTotalOrder) {
  SplitInfo a;
  a.gain = 1.0;
  a.feature = 2;
  a.bin = 3;
  SplitInfo b = a;
  EXPECT_FALSE(a.BetterThan(b));
  EXPECT_FALSE(b.BetterThan(a));
  b.gain = 2.0;
  EXPECT_TRUE(b.BetterThan(a));
  b.gain = a.gain;
  b.feature = 1;
  EXPECT_TRUE(b.BetterThan(a));
  b.feature = a.feature;
  b.bin = 2;
  EXPECT_TRUE(b.BetterThan(a));
  b.bin = a.bin;
  b.default_left = true;
  EXPECT_TRUE(a.BetterThan(b));  // missing-right preferred on full tie
}

TEST(SplitInfoTest, DefaultIsInvalid) {
  SplitInfo s;
  EXPECT_FALSE(s.IsValid());
}

}  // namespace
}  // namespace harp
