// FlatForest / Predictor tests: bit-identical margins vs the RegTree
// reference oracle (binned and raw, dense and sparse, truncated
// ensembles), leaf-index parity, multiclass prob parity, thread-count
// invariance, and flattening of hand-built tree shapes.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/gbdt.h"
#include "core/multiclass.h"
#include "data/synthetic.h"
#include "parallel/thread_pool.h"
#include "predict/flat_forest.h"
#include "predict/predictor.h"
#include "test_util.h"

namespace harp {
namespace {

using testing::MakeDataset;

TrainParams Params(int trees, int tree_size,
                   ObjectiveKind objective = ObjectiveKind::kLogistic) {
  TrainParams p;
  p.num_trees = trees;
  p.tree_size = tree_size;
  p.num_threads = 2;
  p.objective = objective;
  return p;
}

// Naive reference: base margin + tree-order walk of the AoS RegTrees.
std::vector<double> OracleBinned(const GbdtModel& model,
                                 const BinnedMatrix& matrix,
                                 size_t num_trees = 0) {
  const size_t limit = num_trees == 0
                           ? model.NumTrees()
                           : std::min(num_trees, model.NumTrees());
  std::vector<double> margins(matrix.num_rows());
  for (uint32_t r = 0; r < matrix.num_rows(); ++r) {
    double m = model.base_margin();
    for (size_t t = 0; t < limit; ++t) {
      m += model.tree(t).PredictBinned(matrix.RowBins(r));
    }
    margins[r] = m;
  }
  return margins;
}

std::vector<double> OracleRaw(const GbdtModel& model, const Dataset& dataset,
                              size_t num_trees = 0) {
  const size_t limit = num_trees == 0
                           ? model.NumTrees()
                           : std::min(num_trees, model.NumTrees());
  std::vector<double> margins(dataset.num_rows());
  for (uint32_t r = 0; r < dataset.num_rows(); ++r) {
    double m = model.base_margin();
    for (size_t t = 0; t < limit; ++t) {
      m += model.tree(t).PredictRaw(dataset, r);
    }
    margins[r] = m;
  }
  return margins;
}

// Dense dataset -> CSR copy with the NaN entries dropped.
Dataset ToCsr(const Dataset& dense) {
  std::vector<uint32_t> row_ptr{0};
  std::vector<Entry> entries;
  for (uint32_t r = 0; r < dense.num_rows(); ++r) {
    dense.ForEachInRow(
        r, [&](uint32_t f, float v) { entries.push_back({f, v}); });
    row_ptr.push_back(static_cast<uint32_t>(entries.size()));
  }
  return Dataset::FromCsr(dense.num_rows(), dense.num_features(),
                          std::move(row_ptr), std::move(entries),
                          dense.labels());
}

TEST(FlatForest, LayoutInvariants) {
  const Dataset train = MakeDataset(600, 8, 0.8, 11);
  const GbdtModel model = GbdtTrainer(Params(9, 8)).Train(train);
  const FlatForest flat = model.Flatten();

  ASSERT_EQ(flat.num_trees(), model.NumTrees());
  EXPECT_EQ(flat.num_nodes(), model.TotalNodes());
  EXPECT_EQ(flat.base_margin(), model.base_margin());
  const int32_t* left = flat.left_child();
  const double* leaf = flat.leaf_value();
  for (size_t t = 0; t < flat.num_trees(); ++t) {
    EXPECT_EQ(flat.NodesInTree(t), model.tree(t).num_nodes());
    EXPECT_GE(flat.tree_depth(t), 0);
    for (int32_t i = flat.tree_offset(t); i < flat.tree_offset(t + 1); ++i) {
      const int orig = flat.orig_node()[i];
      ASSERT_GE(orig, 0);
      ASSERT_LT(orig, model.tree(t).num_nodes());
      if (left[i] == i) {
        // Leaf: self-loop with the model's leaf value.
        EXPECT_TRUE(model.tree(t).node(orig).IsLeaf());
        EXPECT_EQ(leaf[i], model.tree(t).node(orig).leaf_value);
      } else {
        // Internal: siblings in consecutive slots inside the same tree.
        EXPECT_FALSE(model.tree(t).node(orig).IsLeaf());
        EXPECT_GT(left[i], i);
        EXPECT_LT(left[i] + 1, flat.tree_offset(t + 1));
      }
    }
  }
}

TEST(Predict, BinnedBitIdenticalToOracle) {
  for (const int tree_size : {2, 8, 24}) {
    for (const int trees : {1, 7, 21}) {
      const Dataset train = MakeDataset(700, 10, 0.75, 100 + tree_size);
      const GbdtModel model =
          GbdtTrainer(Params(trees, tree_size)).Train(train);
      const Dataset test = MakeDataset(400, 10, 0.75, 200 + trees);
      const BinnedMatrix binned = model.BinDataset(test);

      const std::vector<double> oracle = OracleBinned(model, binned);
      const std::vector<double> flat = model.PredictMarginsBinned(binned);
      ASSERT_EQ(flat.size(), oracle.size());
      for (size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_EQ(flat[i], oracle[i])  // bit-identical, not approximately
            << "row " << i << " trees=" << trees
            << " tree_size=" << tree_size;
      }
    }
  }
}

TEST(Predict, RawBitIdenticalToOracleWithMissing) {
  const Dataset train = MakeDataset(1000, 12, 0.6, 31);  // 40% missing
  const GbdtModel model = GbdtTrainer(Params(17, 8)).Train(train);
  const Dataset test = MakeDataset(500, 12, 0.6, 32);

  const std::vector<double> oracle = OracleRaw(model, test);
  const std::vector<double> flat = model.PredictMargins(test);
  ASSERT_EQ(flat.size(), oracle.size());
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(flat[i], oracle[i]) << "row " << i;
  }
}

TEST(Predict, SparseRawBitIdenticalToOracle) {
  const Dataset train = MakeDataset(800, 9, 0.5, 41);
  const GbdtModel model = GbdtTrainer(Params(11, 8)).Train(train);
  const Dataset sparse = ToCsr(MakeDataset(300, 9, 0.5, 42));
  ASSERT_EQ(sparse.layout(), Dataset::Layout::kSparse);

  const std::vector<double> oracle = OracleRaw(model, sparse);
  const std::vector<double> flat = model.PredictMargins(sparse);
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(flat[i], oracle[i]) << "row " << i;
  }
}

TEST(Predict, TruncatedEnsembleBitIdentical) {
  const Dataset train = MakeDataset(700, 8, 0.85, 51);
  const GbdtModel model = GbdtTrainer(Params(10, 8)).Train(train);
  const BinnedMatrix binned = model.BinDataset(train);
  for (const size_t limit : {size_t{1}, size_t{4}, size_t{10}, size_t{99}}) {
    const std::vector<double> oracle = OracleBinned(model, binned, limit);
    const std::vector<double> flat =
        model.PredictMarginsBinned(binned, nullptr, limit);
    for (size_t i = 0; i < oracle.size(); ++i) {
      EXPECT_EQ(flat[i], oracle[i]) << "limit " << limit << " row " << i;
    }
  }
}

TEST(Predict, LeafIndexParityWithOracle) {
  const Dataset train = MakeDataset(600, 8, 0.8, 61);
  const GbdtModel model = GbdtTrainer(Params(6, 16)).Train(train);
  const BinnedMatrix binned = model.BinDataset(train);
  ThreadPool pool(3);
  for (size_t t = 0; t < model.NumTrees(); ++t) {
    const std::vector<int> leaves = model.PredictLeafIndices(binned, t);
    const std::vector<int> pooled =
        model.PredictLeafIndices(binned, t, &pool);
    EXPECT_EQ(leaves, pooled);
    for (uint32_t r = 0; r < binned.num_rows(); ++r) {
      EXPECT_EQ(leaves[r], model.tree(t).PredictLeafBinned(binned.RowBins(r)))
          << "tree " << t << " row " << r;
    }
  }
}

TEST(Predict, ThreadCountInvariance) {
  const Dataset train = MakeDataset(1100, 10, 0.8, 71);
  const GbdtModel model = GbdtTrainer(Params(12, 8)).Train(train);
  const BinnedMatrix binned = model.BinDataset(train);

  const std::vector<double> serial = model.PredictMarginsBinned(binned);
  const std::vector<double> serial_raw = model.PredictMargins(train);
  for (const int threads : {1, 2, 5}) {
    ThreadPool pool(threads);
    EXPECT_EQ(model.PredictMarginsBinned(binned, &pool), serial)
        << threads << " threads (binned)";
    EXPECT_EQ(model.PredictMargins(train, &pool), serial_raw)
        << threads << " threads (raw)";
  }
}

TEST(Predict, MulticlassProbParity) {
  SyntheticSpec spec;
  spec.rows = 600;
  spec.features = 8;
  spec.density = 0.9;
  spec.seed = 81;
  spec.label = LabelKind::kMulticlass;
  spec.num_classes = 3;
  const Dataset train = GenerateSynthetic(spec);

  TrainParams p = Params(5, 6);
  MulticlassTrainer trainer(p);
  const MulticlassModel model = trainer.Train(train);

  // Oracle: per-class raw RegTree walks -> sigmoid -> row normalization.
  const int k = model.num_classes();
  std::vector<double> expected(static_cast<size_t>(train.num_rows()) * k);
  for (int c = 0; c < k; ++c) {
    const std::vector<double> margins =
        OracleRaw(model.class_model(c), train);
    for (uint32_t r = 0; r < train.num_rows(); ++r) {
      expected[static_cast<size_t>(r) * k + c] =
          1.0 / (1.0 + std::exp(-margins[r]));
    }
  }
  for (uint32_t r = 0; r < train.num_rows(); ++r) {
    double sum = 0.0;
    for (int c = 0; c < k; ++c) sum += expected[static_cast<size_t>(r) * k + c];
    if (sum <= 0.0) sum = 1.0;
    for (int c = 0; c < k; ++c) expected[static_cast<size_t>(r) * k + c] /= sum;
  }

  const std::vector<double> probs = model.PredictProbs(train);
  ASSERT_EQ(probs.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(probs[i], expected[i]) << "entry " << i;
  }
}

TEST(Predict, EmptyModelYieldsBaseMargin) {
  const Dataset data = MakeDataset(50, 4, 1.0, 91);
  GbdtModel model(ObjectiveKind::kSquaredError, 0.5,
                  QuantileCuts::Compute(data, 16));
  const std::vector<double> margins = model.PredictMargins(data);
  for (double m : margins) EXPECT_EQ(m, 0.5);
}

TEST(Predict, SingleLeafAndChainTrees) {
  const Dataset data = MakeDataset(120, 3, 1.0, 92, /*distinct=*/8);
  QuantileCuts cuts = QuantileCuts::Compute(data, 16);
  GbdtModel model(ObjectiveKind::kSquaredError, 0.0, cuts);

  // Tree 0: bare root leaf (depth 0; the traversal takes zero steps).
  RegTree stump;
  stump.mutable_node(0).leaf_value = 2.5;
  model.AddTree(std::move(stump));

  // Tree 1: left-leaning chain — each split extends the left child, so
  // flattening must renumber (ApplySplit appends children at the end,
  // giving a layout no pre-order walk produces).
  RegTree chain;
  SplitInfo s;
  s.gain = 1.0;
  s.bin = 1;
  s.default_left = false;
  int node = 0;
  for (int d = 0; d < 3; ++d) {
    s.feature = static_cast<uint32_t>(d % data.num_features());
    const auto [l, r] = chain.ApplySplit(node, s, cuts.CutFor(s.feature, 1));
    chain.mutable_node(r).leaf_value = 10.0 * (d + 1);
    node = l;
  }
  chain.mutable_node(node).leaf_value = -7.0;
  ASSERT_TRUE(chain.CheckValid());
  model.AddTree(std::move(chain));

  const BinnedMatrix binned = model.BinDataset(data);
  const std::vector<double> oracle = OracleBinned(model, binned);
  const std::vector<double> flat = model.PredictMarginsBinned(binned);
  const std::vector<double> flat_raw = model.PredictMargins(data);
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(flat[i], oracle[i]) << "row " << i;
    EXPECT_EQ(flat_raw[i], OracleRaw(model, data)[i]) << "row " << i;
  }
}

TEST(Predict, AccumulateMarginsMatchesIncrementalOracle) {
  // The boosting driver's eval path: margins grow one tree at a time.
  const Dataset train = MakeDataset(400, 6, 0.9, 93);
  const GbdtModel model = GbdtTrainer(Params(8, 6)).Train(train);
  const FlatForest flat = model.Flatten();
  const Predictor predictor(flat);

  std::vector<double> incremental(train.num_rows(), model.base_margin());
  for (size_t t = 0; t < model.NumTrees(); ++t) {
    predictor.AccumulateMargins(train, incremental.data(), t, t + 1);
  }
  const std::vector<double> oracle = OracleRaw(model, train);
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(incremental[i], oracle[i]) << "row " << i;
  }
}

TEST(Predict, ShortBatchesBitIdenticalToOracle) {
  // Every size below kRowBlock takes the short-batch fast path (plus one
  // above it for the regular block path); dense and sparse inputs.
  const Dataset train = MakeDataset(400, 10, 0.8, /*seed=*/19);
  GbdtTrainer trainer(Params(12, 8));
  const GbdtModel model = trainer.Train(train);
  const Predictor predictor(*model.FlatSnapshot());
  for (uint32_t rows :
       {1u, 2u, 7u, 63u, 255u, Predictor::kRowBlock + 1}) {
    const Dataset batch = MakeDataset(rows, 10, 0.7, /*seed=*/rows);
    const std::vector<double> oracle = OracleRaw(model, batch);
    const std::vector<double> dense = predictor.PredictMargins(batch);
    const std::vector<double> sparse =
        predictor.PredictMargins(ToCsr(batch));
    for (uint32_t r = 0; r < rows; ++r) {
      ASSERT_EQ(dense[r], oracle[r]) << rows << " rows, row " << r;
      ASSERT_EQ(sparse[r], oracle[r]) << rows << " rows, row " << r;
    }
  }
}

TEST(Predict, PredictRowBitIdenticalToOracle) {
  const Dataset train = MakeDataset(300, 8, 0.75, /*seed=*/29);
  GbdtTrainer trainer(Params(10, 8));
  const GbdtModel model = trainer.Train(train);
  const Predictor predictor(*model.FlatSnapshot());
  const std::vector<double> oracle = OracleRaw(model, train);
  // Rows come straight from the dense storage (missing already NaN).
  const uint32_t width = train.num_features();
  for (uint32_t r = 0; r < 50; ++r) {
    const float* row =
        train.dense_values().data() + static_cast<size_t>(r) * width;
    ASSERT_EQ(predictor.PredictRow(row, width), oracle[r]) << "row " << r;
  }
}

TEST(Predict, AccumulateMarginsDenseMatchesDatasetPath) {
  const Dataset train = MakeDataset(500, 9, 0.8, /*seed=*/31);
  GbdtTrainer trainer(Params(15, 8));
  const GbdtModel model = trainer.Train(train);
  const Predictor predictor(*model.FlatSnapshot());
  const std::vector<double> oracle = OracleRaw(model, train);

  const uint32_t width = train.num_features();
  std::vector<double> margins(train.num_rows(), model.base_margin());
  predictor.AccumulateMarginsDense(train.dense_values().data(),
                                   train.num_rows(), width, margins.data(),
                                   0, model.NumTrees());
  for (uint32_t r = 0; r < train.num_rows(); ++r) {
    ASSERT_EQ(margins[r], oracle[r]) << "row " << r;
  }

  // Truncated tree ranges accumulate too (the serving layer's contract).
  std::vector<double> partial(train.num_rows(), model.base_margin());
  predictor.AccumulateMarginsDense(train.dense_values().data(),
                                   train.num_rows(), width, partial.data(),
                                   0, 4);
  predictor.AccumulateMarginsDense(train.dense_values().data(),
                                   train.num_rows(), width, partial.data(),
                                   4, model.NumTrees());
  for (uint32_t r = 0; r < train.num_rows(); ++r) {
    ASSERT_EQ(partial[r], oracle[r]) << "row " << r;
  }
}

TEST(Predict, FlatSnapshotIsCachedAndInvalidatedOnMutation) {
  const Dataset train = MakeDataset(120, 6, 0.9, /*seed=*/37);
  GbdtTrainer trainer(Params(6, 4));
  GbdtModel model = trainer.Train(train);

  const std::shared_ptr<const FlatForest> first = model.FlatSnapshot();
  EXPECT_EQ(model.FlatSnapshot().get(), first.get());  // cached

  const std::vector<double> before = model.PredictMargins(train);
  GbdtTrainer trainer2(Params(3, 4));
  const GbdtModel extra = trainer2.Train(train);
  model.AddTree(extra.tree(0));  // mutation drops the cache

  const std::shared_ptr<const FlatForest> second = model.FlatSnapshot();
  EXPECT_NE(second.get(), first.get());
  EXPECT_EQ(second->num_trees(), first->num_trees() + 1);
  // The old snapshot stays valid for holders (serving keeps old
  // generations alive across reloads this way).
  EXPECT_EQ(first->num_trees(), static_cast<size_t>(6));

  // Copies share the cache; mutation through mutable_trees invalidates.
  GbdtModel copy = model;
  EXPECT_EQ(copy.FlatSnapshot().get(), second.get());
  copy.mutable_trees();
  EXPECT_NE(copy.FlatSnapshot().get(), second.get());

  const std::vector<double> after = model.PredictMargins(train);
  const std::vector<double> oracle = OracleRaw(model, train);
  for (uint32_t r = 0; r < train.num_rows(); ++r) {
    ASSERT_EQ(after[r], oracle[r]);
    (void)before;
  }
}

}  // namespace
}  // namespace harp
