// Tests for one-vs-rest multiclass training.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "core/multiclass.h"
#include "data/synthetic.h"

namespace harp {
namespace {

Dataset MulticlassData(uint32_t rows, uint32_t classes, uint64_t seed = 901) {
  SyntheticSpec spec;
  spec.rows = rows;
  spec.features = 10;
  spec.label = LabelKind::kMulticlass;
  spec.num_classes = classes;
  spec.margin_scale = 5.0;  // fairly clean classes
  spec.active_features = 6;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

TrainParams Fast(int trees = 10) {
  TrainParams p;
  p.num_trees = trees;
  p.tree_size = 4;
  p.num_threads = 2;
  return p;
}

TEST(SyntheticMulticlass, LabelsCoverAllClasses) {
  const Dataset ds = MulticlassData(2000, 4);
  std::set<int> seen;
  for (float y : ds.labels()) {
    ASSERT_GE(y, 0.0f);
    ASSERT_LT(y, 4.0f);
    seen.insert(static_cast<int>(y));
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Multiclass, LearnsThreeClasses) {
  const Dataset all = MulticlassData(4000, 3);
  const Dataset train = all.Slice(0, 3200);
  const Dataset test = all.Slice(3200, 4000);
  MulticlassTrainer trainer(Fast(12));
  const MulticlassModel model = trainer.Train(train);
  EXPECT_EQ(model.num_classes(), 3);

  const double train_acc =
      MulticlassAccuracy(train.labels(), model.PredictClasses(train));
  const double test_acc =
      MulticlassAccuracy(test.labels(), model.PredictClasses(test));
  EXPECT_GT(train_acc, 0.7);
  EXPECT_GT(test_acc, 0.6);        // 3 classes: chance is 0.33
}

TEST(Multiclass, ProbabilitiesNormalized) {
  const Dataset train = MulticlassData(1500, 4);
  const MulticlassModel model = MulticlassTrainer(Fast(5)).Train(train);
  const std::vector<double> probs = model.PredictProbs(train);
  ASSERT_EQ(probs.size(), static_cast<size_t>(train.num_rows()) * 4);
  for (uint32_t r = 0; r < train.num_rows(); ++r) {
    double sum = 0.0;
    for (int c = 0; c < 4; ++c) {
      const double p = probs[static_cast<size_t>(r) * 4 + c];
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Multiclass, LogLossBeatsUniform) {
  const Dataset train = MulticlassData(2000, 3);
  const MulticlassModel model = MulticlassTrainer(Fast(12)).Train(train);
  const double loss = MulticlassLogLoss(train.labels(),
                                        model.PredictProbs(train), 3);
  EXPECT_LT(loss, std::log(3.0));  // better than the uniform predictor
}

TEST(Multiclass, SaveLoadRoundtrip) {
  const Dataset train = MulticlassData(800, 3);
  const MulticlassModel model = MulticlassTrainer(Fast(4)).Train(train);
  const std::string path = "/tmp/harp_multiclass_test.model";
  std::string error;
  ASSERT_TRUE(SaveMulticlassModel(path, model, &error)) << error;
  MulticlassModel loaded;
  ASSERT_TRUE(LoadMulticlassModel(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.num_classes(), 3);
  EXPECT_EQ(model.PredictClasses(train), loaded.PredictClasses(train));
  std::remove(path.c_str());
}

TEST(Multiclass, LoadRejectsGarbage) {
  MulticlassModel out;
  std::string error;
  EXPECT_FALSE(LoadMulticlassModel("/tmp/nonexistent_harp_mc", &out, &error));
  const std::string path = "/tmp/harp_mc_bad.model";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("not a multiclass model\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadMulticlassModel(path, &out, &error));
  std::remove(path.c_str());
}

TEST(MulticlassDeath, RejectsNonLogisticAndBadLabels) {
  TrainParams p = Fast();
  p.objective = ObjectiveKind::kSquaredError;
  EXPECT_DEATH(MulticlassTrainer{p}, "logistic");

  const Dataset binary = [] {
    SyntheticSpec spec;
    spec.rows = 50;
    spec.features = 4;
    return GenerateSynthetic(spec);
  }();
  // Binary labels {0, 1} infer 2 classes: that is allowed. Non-integer
  // labels are not.
  Dataset bad = binary;
  bad.mutable_labels()[0] = 0.5f;
  MulticlassTrainer trainer(Fast(2));
  EXPECT_DEATH(trainer.Train(bad), "integers");
}

TEST(Multiclass, AccuracyMetricBasics) {
  EXPECT_DOUBLE_EQ(MulticlassAccuracy({0, 1, 2}, {0, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(MulticlassAccuracy({0, 1, 2}, {0, 0, 0}), 1.0 / 3.0);
}

}  // namespace
}  // namespace harp
