// Kernel-layer tests: every specialized hist_kernels variant must produce
// BIT-IDENTICAL histograms to the reference scalar AccumulateRow — across
// MemBuf/gather row sources, filtered/full bin ranges, caller-tiled and
// full feature blocks, uneven per-feature bin counts, and row ranges that
// exercise the empty / single-row / odd-length remainder paths and the
// internal row-tile boundary. Plus the DP replica lifecycle (storage
// reuse, lazy clearing) and MakeBinRanges coverage.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/hist_builder.h"
#include "core/hist_kernels.h"
#include "test_util.h"

namespace harp {
namespace {

using harp::testing::MakeDataset;
using harp::testing::MakeGradients;
using harp::testing::NaiveHist;

// 19 features forces the full-feature kernels through their internal
// feature tiling (tile width 16); 2100 rows crosses the 2048-row internal
// row-tile boundary; 13 distinct values against 16 cut candidates makes
// per-feature bin counts uneven.
struct KernelFixture {
  Dataset ds;
  BinnedMatrix matrix;
  std::vector<GradientPair> gh;

  KernelFixture()
      : ds(MakeDataset(2100, 19, 0.85, 71, /*distinct=*/13)),
        matrix(BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16))),
        gh(MakeGradients(2100, 72)) {}
};

struct KernelCase {
  bool membuf;
  bool full_bins;
  bool full_features;
};

std::string KernelCaseName(const ::testing::TestParamInfo<KernelCase>& info) {
  const KernelCase& c = info.param;
  std::string name = c.membuf ? "membuf" : "gather";
  name += c.full_bins ? "_fullbins" : "_filtered";
  name += c.full_features ? "_fullblock" : "_tiled";
  return name;
}

class HistKernelParity : public ::testing::TestWithParam<KernelCase> {};

// Every dispatchable kernel, against the scalar reference, over row ranges
// covering the empty range, a single row, odd lengths (4-row remainder
// path), and ranges spanning the internal row-tile boundary. Equality is
// exact (GHPair operator==): the kernels must not change the per-slot
// floating-point accumulation order.
TEST_P(HistKernelParity, BitExactVsScalarReference) {
  const KernelCase& c = GetParam();
  const KernelFixture fx;
  const uint32_t rows = fx.matrix.num_rows();
  const uint32_t features = fx.matrix.num_features();

  ThreadPool pool(1);
  RowPartitioner partitioner(rows, c.membuf);
  partitioner.Reset(fx.gh, /*max_nodes=*/2, &pool);

  const HistKernelMatrix km = MakeHistKernelMatrix(fx.matrix, partitioner);
  const HistRowSource src = MakeHistRowSource(partitioner, /*node_id=*/0);
  const HistKernelFn kernel =
      SelectHistKernel(c.membuf, c.full_bins, c.full_features);
  ASSERT_NE(kernel, nullptr);

  const Range bins = c.full_bins ? Range{0u, 256u} : Range{2u, 9u};
  // Caller-tiled kernels get 5-feature blocks (19 % 5 != 0, so the last
  // block is ragged); full-block kernels get the whole feature space.
  const auto blocks =
      MakeFeatureBlocks(features, c.full_features ? 0 : 5);

  const std::pair<uint32_t, uint32_t> row_ranges[] = {
      {0, 0},       // empty
      {5, 5},       // empty, non-zero origin
      {0, 1},       // single row
      {3, 10},      // odd length, unaligned origin
      {0, 2059},    // crosses the 2048-row internal tile boundary
      {2040, 2100}, // range starting near the tile boundary
      {0, rows},    // everything
  };

  for (const auto& [begin, end] : row_ranges) {
    std::vector<GHPair> actual(fx.matrix.TotalBins());
    std::vector<GHPair> expected(fx.matrix.TotalBins());
    for (const Range& fb : blocks) {
      kernel(km, src, begin, end, actual.data(), fb, bins);
      partitioner.ForEachRowRange(
          0, begin, end, [&](uint32_t rid, float g, float h) {
            AccumulateRow(fx.matrix.RowBins(rid), g, h, fx.matrix,
                          expected.data(), fb, bins);
          });
    }
    for (size_t s = 0; s < expected.size(); ++s) {
      ASSERT_EQ(actual[s], expected[s])
          << "rows [" << begin << ", " << end << ") slot " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, HistKernelParity,
    ::testing::Values(KernelCase{true, true, true},
                      KernelCase{true, true, false},
                      KernelCase{true, false, true},
                      KernelCase{true, false, false},
                      KernelCase{false, true, true},
                      KernelCase{false, true, false},
                      KernelCase{false, false, true},
                      KernelCase{false, false, false}),
    KernelCaseName);

TEST(HistKernels, GatherSourceRequiresGradients) {
  const KernelFixture fx;
  RowPartitioner partitioner(fx.matrix.num_rows(), /*use_membuf=*/false);
  // No Reset: the gradient array is unset.
  EXPECT_DEATH(MakeHistKernelMatrix(fx.matrix, partitioner),
               "gather kernels need");
}

// ---------- DP replica lifecycle ----------

// Shared setup: dataset with a root split so node blocks hold two nodes.
struct DpFixture {
  DpFixture(int threads, bool membuf, int node_blk)
      : ds(MakeDataset(900, 7, 0.8, 41, /*distinct=*/21)),
        matrix(BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 32))),
        gh(MakeGradients(900, 42)),
        pool(threads),
        partitioner(900, membuf) {
    params.node_blk_size = node_blk;
    params.use_membuf = membuf;
    partitioner.Reset(gh, /*max_nodes=*/8, &pool);
    const uint32_t split_bin = std::max(1u, (matrix.NumBins(0) - 1) / 2);
    partitioner.ApplySplit(0, 1, 2, matrix, 0, split_bin,
                           /*default_left=*/false, &pool);
  }

  std::vector<GHPair> Reference(int node) {
    std::vector<uint32_t> node_rows;
    partitioner.ForEachRow(node, [&](uint32_t rid, float, float) {
      node_rows.push_back(rid);
    });
    return NaiveHist(matrix, gh, node_rows);
  }

  void CheckNode(HistogramPool& hists, int node) {
    const std::vector<GHPair> expected = Reference(node);
    const GHPair* actual = hists.Get(node);
    for (size_t s = 0; s < expected.size(); ++s) {
      ASSERT_EQ(actual[s], expected[s]) << "node " << node << " slot " << s;
    }
  }

  Dataset ds;
  BinnedMatrix matrix;
  std::vector<GradientPair> gh;
  TrainParams params;
  ThreadPool pool;
  RowPartitioner partitioner;
};

// Replica storage must be allocated once and reused across Build calls;
// repeated builds must stay correct, which proves the lazy clearing wipes
// exactly the regions the previous build dirtied.
TEST(HistBuilderDpReplicas, StorageReusedAcrossBuilds) {
  DpFixture fx(/*threads=*/3, /*membuf=*/true, /*node_blk=*/2);
  HistogramPool hists(fx.matrix.TotalBins());
  const BuildContext ctx{fx.matrix, fx.params, fx.pool, fx.partitioner,
                         hists};
  const std::vector<int> nodes{1, 2};
  HistBuilderDP dp;

  for (int iter = 0; iter < 3; ++iter) {
    hists.Acquire(1);
    hists.Acquire(2);
    dp.Build(ctx, nodes);
    fx.CheckNode(hists, 1);
    fx.CheckNode(hists, 2);
    hists.ReleaseAll();
  }

  const auto& stats = dp.replica_stats();
  EXPECT_EQ(stats.grow_events, 1) << "replicas_ must not reallocate when "
                                     "the layout is unchanged";
  EXPECT_EQ(stats.node_blocks, 3);
  EXPECT_GT(dp.replica_capacity(), 0u);
}

// Shrinking the node block (smaller replica stride) must reuse the larger
// allocation and still clear the right regions — the dirty ledger tracks
// flat offsets, which survive the layout change.
TEST(HistBuilderDpReplicas, LayoutChangeKeepsCleanInvariant) {
  DpFixture fx(/*threads=*/2, /*membuf=*/false, /*node_blk=*/2);
  HistogramPool hists(fx.matrix.TotalBins());
  const BuildContext ctx{fx.matrix, fx.params, fx.pool, fx.partitioner,
                         hists};
  HistBuilderDP dp;

  hists.Acquire(1);
  hists.Acquire(2);
  dp.Build(ctx, std::vector<int>{1, 2});  // two-node block
  hists.ReleaseAll();
  const size_t capacity = dp.replica_capacity();

  hists.Acquire(1);
  dp.Build(ctx, std::vector<int>{1});  // one-node block: stride halves
  fx.CheckNode(hists, 1);
  hists.ReleaseAll();

  hists.Acquire(2);
  dp.Build(ctx, std::vector<int>{2});
  fx.CheckNode(hists, 2);
  hists.ReleaseAll();

  EXPECT_EQ(dp.replica_stats().grow_events, 1);
  EXPECT_EQ(dp.replica_capacity(), capacity) << "smaller layouts must not "
                                                "reallocate";
}

// Untouched (thread, node) regions are skipped by the reduction: with far
// more threads than row tasks, most replicas stay untouched.
TEST(HistBuilderDpReplicas, ReductionSkipsUntouchedThreads) {
  DpFixture fx(/*threads=*/4, /*membuf=*/true, /*node_blk=*/1);
  // One giant row block per node: at most one thread accumulates a node.
  fx.params.row_blk_size = 1 << 20;
  HistogramPool hists(fx.matrix.TotalBins());
  const BuildContext ctx{fx.matrix, fx.params, fx.pool, fx.partitioner,
                         hists};
  HistBuilderDP dp;

  hists.Acquire(1);
  hists.Acquire(2);
  dp.Build(ctx, std::vector<int>{1, 2});
  fx.CheckNode(hists, 1);
  fx.CheckNode(hists, 2);
  hists.ReleaseAll();

  const auto& stats = dp.replica_stats();
  // 2 node blocks x 4 threads = 8 regions total, but each single-task
  // node is touched by exactly one thread.
  EXPECT_EQ(stats.regions_total, 8);
  EXPECT_EQ(stats.regions_touched, 2);
}

// ---------- MakeBinRanges ----------

TEST(MakeBinRangesTest, CoversActualBinUniverse) {
  const auto ranges = MakeBinRanges(4, 10);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0], (Range{0u, 4u}));
  EXPECT_EQ(ranges[1], (Range{4u, 8u}));
  EXPECT_EQ(ranges[2], (Range{8u, 10u}));
}

TEST(MakeBinRangesTest, BlockSizeAtLeastUniverseDisablesBlocking) {
  const auto ranges = MakeBinRanges(10, 10);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (Range{0u, 10u}));
  EXPECT_EQ(MakeBinRanges(256, 17).size(), 1u);
}

TEST(MakeBinRangesTest, DefaultUniverseIs256) {
  const auto ranges = MakeBinRanges(64);
  ASSERT_EQ(ranges.size(), 4u);
  EXPECT_EQ(ranges.back(), (Range{192u, 256u}));
}

TEST(BinnedMatrixMaxBins, TracksWidestFeature) {
  const Dataset ds = MakeDataset(300, 5, 0.9, 7, /*distinct=*/11);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 32));
  uint32_t expected = 0;
  for (uint32_t f = 0; f < matrix.num_features(); ++f) {
    expected = std::max(expected, matrix.NumBins(f));
  }
  EXPECT_EQ(matrix.MaxBins(), expected);
  EXPECT_GT(matrix.MaxBins(), 0u);
  EXPECT_LE(matrix.MaxBins(), 256u);
}

}  // namespace
}  // namespace harp
