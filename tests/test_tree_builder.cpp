// Properties of HarpTreeBuilder across the full configuration space:
// DP / MP / SYNC must build IDENTICAL trees regardless of block sizes,
// thread count, MemBuf or the subtraction trick; ASYNC must build valid
// trees of the right size. Budgets and depth limits are enforced.
#include <gtest/gtest.h>

#include <string>

#include "core/gbdt.h"
#include "core/tree_builder.h"
#include "test_util.h"

namespace harp {
namespace {

using harp::testing::MakeDataset;
using harp::testing::MakeGradients;
using harp::testing::TreesEqual;

struct Env {
  Dataset ds;
  BinnedMatrix matrix;
  std::vector<GradientPair> gh;
};

Env MakeEnv(uint32_t rows = 1500, uint32_t features = 9, uint64_t seed = 7) {
  Dataset ds = MakeDataset(rows, features, 0.85, seed, /*distinct=*/24);
  BinnedMatrix matrix = BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 24));
  auto gh = MakeGradients(rows, seed + 1);
  return Env{std::move(ds), std::move(matrix), std::move(gh)};
}

RegTree BuildWith(const Env& env, TrainParams params, int threads,
                  TrainStats* stats = nullptr) {
  params.num_threads = threads;
  ThreadPool pool(threads);
  HarpTreeBuilder builder(env.matrix, params, pool);
  TrainStats local;
  return builder.BuildTree(env.gh, stats != nullptr ? stats : &local);
}

TrainParams BaseParams(GrowPolicy policy, int tree_size = 5) {
  TrainParams p;
  p.grow_policy = policy;
  p.tree_size = tree_size;
  p.topk = 4;
  p.min_split_loss = 0.0;
  p.min_child_weight = 0.1;
  return p;
}

// ---------- mode/config equivalence sweep ----------

struct ConfigCase {
  ParallelMode mode;
  int feature_blk;
  int node_blk;
  int bin_blk;
  bool membuf;
  bool subtraction;
  int threads;
};

std::string ConfigName(const ::testing::TestParamInfo<ConfigCase>& info) {
  const ConfigCase& c = info.param;
  std::string n = ToString(c.mode);
  n += "_f" + std::to_string(c.feature_blk) + "_n" +
       std::to_string(c.node_blk) + "_b" + std::to_string(c.bin_blk);
  n += c.membuf ? "_mb" : "_ga";
  n += c.subtraction ? "_sub" : "_dir";
  n += "_t" + std::to_string(c.threads);
  return n;
}

class DeterministicModes : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(DeterministicModes, SameTreeAsSerialReference) {
  const Env env = MakeEnv();
  for (GrowPolicy policy :
       {GrowPolicy::kDepthwise, GrowPolicy::kLeafwise, GrowPolicy::kTopK}) {
    // Reference: serial DP, no blocks, no tricks.
    TrainParams ref = BaseParams(policy);
    ref.mode = ParallelMode::kDP;
    const RegTree expected = BuildWith(env, ref, 1);
    ASSERT_TRUE(expected.CheckValid());
    ASSERT_GT(expected.NumLeaves(), 2);

    const ConfigCase& c = GetParam();
    TrainParams p = BaseParams(policy);
    p.mode = c.mode;
    p.feature_blk_size = c.feature_blk;
    p.node_blk_size = c.node_blk;
    p.bin_blk_size = c.bin_blk;
    p.use_membuf = c.membuf;
    p.use_hist_subtraction = c.subtraction;
    const RegTree actual = BuildWith(env, p, c.threads);
    EXPECT_TRUE(TreesEqual(expected, actual))
        << "policy " << ToString(policy) << " config differs from reference";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeterministicModes,
    ::testing::Values(
        ConfigCase{ParallelMode::kDP, 0, 1, 256, true, false, 4},
        ConfigCase{ParallelMode::kDP, 3, 2, 256, true, false, 4},
        ConfigCase{ParallelMode::kDP, 2, 4, 256, false, false, 2},
        ConfigCase{ParallelMode::kDP, 0, 1, 256, true, true, 4},
        ConfigCase{ParallelMode::kMP, 1, 1, 256, true, false, 4},
        ConfigCase{ParallelMode::kMP, 4, 2, 256, true, false, 3},
        ConfigCase{ParallelMode::kMP, 2, 2, 8, false, false, 4},
        ConfigCase{ParallelMode::kMP, 3, 1, 256, true, true, 4},
        ConfigCase{ParallelMode::kSYNC, 2, 2, 256, true, false, 4},
        ConfigCase{ParallelMode::kSYNC, 0, 4, 256, false, true, 3},
        ConfigCase{ParallelMode::kSYNC, 4, 2, 16, true, false, 2}),
    ConfigName);

// ---------- ASYNC ----------

class AsyncThreads : public ::testing::TestWithParam<int> {};

TEST_P(AsyncThreads, BuildsValidTreeOfExpectedSize) {
  const Env env = MakeEnv(2500, 8, 23);
  TrainParams p = BaseParams(GrowPolicy::kTopK, 5);
  p.mode = ParallelMode::kASYNC;
  p.topk = 8;
  TrainStats stats;
  const RegTree tree = BuildWith(env, p, GetParam(), &stats);
  EXPECT_TRUE(tree.CheckValid());
  EXPECT_LE(tree.NumLeaves(), 32);
  EXPECT_GT(tree.NumLeaves(), 4);
  // Leaf row counts cover the dataset.
  uint32_t covered = 0;
  for (const TreeNode& n : tree.nodes()) {
    if (n.IsLeaf()) covered += n.num_rows;
  }
  EXPECT_EQ(covered, env.ds.num_rows());
}

INSTANTIATE_TEST_SUITE_P(Threads, AsyncThreads, ::testing::Values(1, 2, 4));

TEST(Async, SingleThreadMatchesLeafwiseReference) {
  // With one worker the greedy pop order is exactly leafwise top-1, so the
  // ASYNC tree must equal the deterministic leafwise tree.
  const Env env = MakeEnv(1200, 7, 31);
  TrainParams ref = BaseParams(GrowPolicy::kLeafwise, 4);
  ref.mode = ParallelMode::kDP;
  const RegTree expected = BuildWith(env, ref, 1);

  TrainParams p = BaseParams(GrowPolicy::kLeafwise, 4);
  p.mode = ParallelMode::kASYNC;
  const RegTree actual = BuildWith(env, p, 1);
  EXPECT_TRUE(TreesEqual(expected, actual));
}

TEST(Async, RecordsSpinLockActivity) {
  const Env env = MakeEnv(3000, 8, 37);
  TrainParams p = BaseParams(GrowPolicy::kTopK, 6);
  p.mode = ParallelMode::kASYNC;
  p.num_threads = 4;
  ThreadPool pool(4);
  HarpTreeBuilder builder(env.matrix, p, pool);
  TrainStats stats;
  builder.BuildTree(env.gh, &stats);
  EXPECT_GT(pool.Snapshot().spin_acquires, 0);
}

// ---------- budgets and limits ----------

TEST(TreeBuilder, LeafBudgetRespectedAllModes) {
  const Env env = MakeEnv(2000, 8, 41);
  for (ParallelMode mode : {ParallelMode::kDP, ParallelMode::kMP,
                            ParallelMode::kSYNC, ParallelMode::kASYNC}) {
    TrainParams p = BaseParams(GrowPolicy::kTopK, 3);  // <= 8 leaves
    p.mode = mode;
    const RegTree tree = BuildWith(env, p, 4);
    EXPECT_LE(tree.NumLeaves(), 8) << ToString(mode);
    EXPECT_TRUE(tree.CheckValid());
  }
}

TEST(TreeBuilder, DepthwiseRespectsDepthLimit) {
  const Env env = MakeEnv(2000, 8, 43);
  TrainParams p = BaseParams(GrowPolicy::kDepthwise, 3);
  const RegTree tree = BuildWith(env, p, 2);
  EXPECT_LE(tree.MaxDepth(), 3);
  EXPECT_LE(tree.NumLeaves(), 8);
}

TEST(TreeBuilder, LeafwiseCanGrowDeeperThanDepthwise) {
  const Env env = MakeEnv(2000, 8, 47);
  TrainParams depth = BaseParams(GrowPolicy::kDepthwise, 3);
  TrainParams leaf = BaseParams(GrowPolicy::kLeafwise, 3);
  const RegTree a = BuildWith(env, depth, 2);
  const RegTree b = BuildWith(env, leaf, 2);
  EXPECT_LE(a.MaxDepth(), 3);
  // Leafwise uses the same leaf budget but no depth cap; on this data the
  // gain-greedy tree is deeper.
  EXPECT_GE(b.MaxDepth(), a.MaxDepth());
}

TEST(TreeBuilder, NodeSumsConsistentParentChildren) {
  const Env env = MakeEnv(1000, 6, 53);
  TrainParams p = BaseParams(GrowPolicy::kTopK, 4);
  const RegTree tree = BuildWith(env, p, 2);
  for (int i = 0; i < tree.num_nodes(); ++i) {
    const TreeNode& n = tree.node(i);
    if (n.IsLeaf()) continue;
    const TreeNode& l = tree.node(n.left);
    const TreeNode& r = tree.node(n.right);
    EXPECT_NEAR(l.sum.g + r.sum.g, n.sum.g, 1e-6);
    EXPECT_NEAR(l.sum.h + r.sum.h, n.sum.h, 1e-6);
    EXPECT_EQ(l.num_rows + r.num_rows, n.num_rows);
  }
}

TEST(TreeBuilder, LeafValuesMatchEvaluatorFormula) {
  const Env env = MakeEnv(800, 5, 59);
  TrainParams p = BaseParams(GrowPolicy::kLeafwise, 4);
  const RegTree tree = BuildWith(env, p, 2);
  const SplitEvaluator eval(p);
  for (const TreeNode& n : tree.nodes()) {
    if (!n.IsLeaf()) continue;
    EXPECT_DOUBLE_EQ(n.leaf_value, eval.LeafValue(n.sum));
  }
}

TEST(TreeBuilder, GainNeverBelowGamma) {
  const Env env = MakeEnv(900, 6, 61);
  TrainParams p = BaseParams(GrowPolicy::kTopK, 5);
  p.min_split_loss = 0.4;
  const RegTree tree = BuildWith(env, p, 2);
  for (const TreeNode& n : tree.nodes()) {
    if (!n.IsLeaf()) {
      EXPECT_GT(n.gain, 0.0);
    }
  }
}

TEST(TreeBuilder, StatsArePopulated) {
  const Env env = MakeEnv(1000, 6, 67);
  TrainParams p = BaseParams(GrowPolicy::kTopK, 4);
  TrainStats stats;
  const RegTree tree = BuildWith(env, p, 2, &stats);
  EXPECT_GT(stats.build_hist_ns, 0);
  EXPECT_GT(stats.find_split_ns, 0);
  EXPECT_GT(stats.hist_updates, 0);
  EXPECT_EQ(stats.leaves, tree.NumLeaves());
  EXPECT_EQ(stats.nodes_split, tree.NumLeaves() - 1);
  EXPECT_GT(stats.hist_peak_bytes, 0u);
}

}  // namespace
}  // namespace harp
