// Tests for objectives: gradient correctness (vs finite differences),
// transforms, initial margins.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/objective.h"
#include "parallel/thread_pool.h"

namespace harp {
namespace {

double LogisticLoss(double label, double margin) {
  const double p = 1.0 / (1.0 + std::exp(-margin));
  return label > 0.5 ? -std::log(p) : -std::log(1.0 - p);
}

double SquaredLoss(double label, double margin) {
  return 0.5 * (margin - label) * (margin - label);
}

TEST(Logistic, GradientsMatchFiniteDifferences) {
  const auto obj = Objective::Create(ObjectiveKind::kLogistic);
  const double eps = 1e-5;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const float label = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
    const double margin = rng.Uniform(-4.0, 4.0);
    const GradientPair gp = obj->RowGradient(label, margin);
    const double g_fd = (LogisticLoss(label, margin + eps) -
                         LogisticLoss(label, margin - eps)) /
                        (2 * eps);
    const double h_fd = (LogisticLoss(label, margin + eps) -
                         2 * LogisticLoss(label, margin) +
                         LogisticLoss(label, margin - eps)) /
                        (eps * eps);
    EXPECT_NEAR(gp.g, g_fd, 1e-4);
    EXPECT_NEAR(gp.h, h_fd, 1e-3);
  }
}

TEST(Logistic, HessianPositiveAndBounded) {
  const auto obj = Objective::Create(ObjectiveKind::kLogistic);
  for (double margin : {-30.0, -1.0, 0.0, 1.0, 30.0}) {
    const GradientPair gp = obj->RowGradient(1.0f, margin);
    EXPECT_GT(gp.h, 0.0f);
    EXPECT_LE(gp.h, 0.25f + 1e-6f);
  }
}

TEST(Logistic, TransformIsSigmoid) {
  const auto obj = Objective::Create(ObjectiveKind::kLogistic);
  EXPECT_DOUBLE_EQ(obj->Transform(0.0), 0.5);
  EXPECT_NEAR(obj->Transform(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-15);
}

TEST(Logistic, InitialMarginInvertsSigmoid) {
  const auto obj = Objective::Create(ObjectiveKind::kLogistic);
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(obj->Transform(obj->InitialMargin(p)), p, 1e-12);
  }
}

TEST(Squared, GradientsMatchFiniteDifferences) {
  const auto obj = Objective::Create(ObjectiveKind::kSquaredError);
  const double eps = 1e-4;
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const float label = static_cast<float>(rng.Normal() * 2.0);
    const double margin = rng.Uniform(-4.0, 4.0);
    const GradientPair gp = obj->RowGradient(label, margin);
    const double g_fd = (SquaredLoss(label, margin + eps) -
                         SquaredLoss(label, margin - eps)) /
                        (2 * eps);
    EXPECT_NEAR(gp.g, g_fd, 1e-3);
    EXPECT_FLOAT_EQ(gp.h, 1.0f);
  }
}

TEST(Squared, TransformIsIdentity) {
  const auto obj = Objective::Create(ObjectiveKind::kSquaredError);
  EXPECT_DOUBLE_EQ(obj->Transform(3.7), 3.7);
  EXPECT_DOUBLE_EQ(obj->InitialMargin(0.5), 0.5);
}

TEST(Objective, ComputeGradientsMatchesRowGradient) {
  const auto obj = Objective::Create(ObjectiveKind::kLogistic);
  Rng rng(7);
  const size_t n = 5000;
  std::vector<float> labels(n);
  std::vector<double> margins(n);
  for (size_t i = 0; i < n; ++i) {
    labels[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
    margins[i] = rng.Uniform(-3.0, 3.0);
  }
  std::vector<GradientPair> serial;
  obj->ComputeGradients(labels, margins, &serial, nullptr);
  ThreadPool pool(4);
  std::vector<GradientPair> parallel;
  obj->ComputeGradients(labels, margins, &parallel, &pool);
  ASSERT_EQ(serial.size(), n);
  for (size_t i = 0; i < n; ++i) {
    const GradientPair expect = obj->RowGradient(labels[i], margins[i]);
    EXPECT_FLOAT_EQ(serial[i].g, expect.g);
    EXPECT_FLOAT_EQ(serial[i].h, expect.h);
    EXPECT_FLOAT_EQ(parallel[i].g, expect.g);
    EXPECT_FLOAT_EQ(parallel[i].h, expect.h);
  }
}

TEST(Objective, KindRoundtrip) {
  EXPECT_EQ(Objective::Create(ObjectiveKind::kLogistic)->kind(),
            ObjectiveKind::kLogistic);
  EXPECT_EQ(Objective::Create(ObjectiveKind::kSquaredError)->kind(),
            ObjectiveKind::kSquaredError);
}

}  // namespace
}  // namespace harp
