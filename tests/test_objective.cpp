// Tests for objectives: gradient correctness (vs finite differences),
// transforms, initial margins.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/objective.h"
#include "parallel/thread_pool.h"

namespace harp {
namespace {

double LogisticLoss(double label, double margin) {
  const double p = 1.0 / (1.0 + std::exp(-margin));
  return label > 0.5 ? -std::log(p) : -std::log(1.0 - p);
}

double SquaredLoss(double label, double margin) {
  return 0.5 * (margin - label) * (margin - label);
}

TEST(Logistic, GradientsMatchFiniteDifferences) {
  const auto obj = Objective::Create(ObjectiveKind::kLogistic);
  const double eps = 1e-5;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const float label = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
    const double margin = rng.Uniform(-4.0, 4.0);
    const GradientPair gp = obj->RowGradient(label, margin);
    const double g_fd = (LogisticLoss(label, margin + eps) -
                         LogisticLoss(label, margin - eps)) /
                        (2 * eps);
    const double h_fd = (LogisticLoss(label, margin + eps) -
                         2 * LogisticLoss(label, margin) +
                         LogisticLoss(label, margin - eps)) /
                        (eps * eps);
    EXPECT_NEAR(gp.g, g_fd, 1e-4);
    EXPECT_NEAR(gp.h, h_fd, 1e-3);
  }
}

TEST(Logistic, HessianPositiveAndBounded) {
  const auto obj = Objective::Create(ObjectiveKind::kLogistic);
  for (double margin : {-30.0, -1.0, 0.0, 1.0, 30.0}) {
    const GradientPair gp = obj->RowGradient(1.0f, margin);
    EXPECT_GT(gp.h, 0.0f);
    EXPECT_LE(gp.h, 0.25f + 1e-6f);
  }
}

TEST(Logistic, TransformIsSigmoid) {
  const auto obj = Objective::Create(ObjectiveKind::kLogistic);
  EXPECT_DOUBLE_EQ(obj->Transform(0.0), 0.5);
  EXPECT_NEAR(obj->Transform(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-15);
}

TEST(Logistic, InitialMarginInvertsSigmoid) {
  const auto obj = Objective::Create(ObjectiveKind::kLogistic);
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(obj->Transform(obj->InitialMargin(p)), p, 1e-12);
  }
}

TEST(Squared, GradientsMatchFiniteDifferences) {
  const auto obj = Objective::Create(ObjectiveKind::kSquaredError);
  const double eps = 1e-4;
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const float label = static_cast<float>(rng.Normal() * 2.0);
    const double margin = rng.Uniform(-4.0, 4.0);
    const GradientPair gp = obj->RowGradient(label, margin);
    const double g_fd = (SquaredLoss(label, margin + eps) -
                         SquaredLoss(label, margin - eps)) /
                        (2 * eps);
    EXPECT_NEAR(gp.g, g_fd, 1e-3);
    EXPECT_FLOAT_EQ(gp.h, 1.0f);
  }
}

TEST(Squared, TransformIsIdentity) {
  const auto obj = Objective::Create(ObjectiveKind::kSquaredError);
  EXPECT_DOUBLE_EQ(obj->Transform(3.7), 3.7);
  EXPECT_DOUBLE_EQ(obj->InitialMargin(0.5), 0.5);
}

TEST(Objective, ComputeGradientsMatchesRowGradient) {
  const auto obj = Objective::Create(ObjectiveKind::kLogistic);
  Rng rng(7);
  const size_t n = 5000;
  std::vector<float> labels(n);
  std::vector<double> margins(n);
  for (size_t i = 0; i < n; ++i) {
    labels[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
    margins[i] = rng.Uniform(-3.0, 3.0);
  }
  std::vector<GradientPair> serial;
  obj->ComputeGradients(labels, margins, &serial, nullptr);
  ThreadPool pool(4);
  std::vector<GradientPair> parallel;
  obj->ComputeGradients(labels, margins, &parallel, &pool);
  ASSERT_EQ(serial.size(), n);
  for (size_t i = 0; i < n; ++i) {
    const GradientPair expect = obj->RowGradient(labels[i], margins[i]);
    EXPECT_FLOAT_EQ(serial[i].g, expect.g);
    EXPECT_FLOAT_EQ(serial[i].h, expect.h);
    EXPECT_FLOAT_EQ(parallel[i].g, expect.g);
    EXPECT_FLOAT_EQ(parallel[i].h, expect.h);
  }
}

TEST(Objective, KindRoundtrip) {
  EXPECT_EQ(Objective::Create(ObjectiveKind::kLogistic)->kind(),
            ObjectiveKind::kLogistic);
  EXPECT_EQ(Objective::Create(ObjectiveKind::kSquaredError)->kind(),
            ObjectiveKind::kSquaredError);
  EXPECT_EQ(Objective::Create(ObjectiveKind::kQuantile)->kind(),
            ObjectiveKind::kQuantile);
  EXPECT_EQ(Objective::Create(ObjectiveKind::kPoisson)->kind(),
            ObjectiveKind::kPoisson);
  EXPECT_EQ(Objective::Create(ObjectiveKind::kLambdaRank)->kind(),
            ObjectiveKind::kLambdaRank);
}

// ---------- quantile (pinball) ----------

double PinballPointLoss(double label, double margin, double alpha) {
  const double d = label - margin;
  return d >= 0.0 ? alpha * d : (alpha - 1.0) * d;
}

TEST(Quantile, GradientsMatchFiniteDifferences) {
  for (double alpha : {0.1, 0.5, 0.9}) {
    ObjectiveConfig config;
    config.kind = ObjectiveKind::kQuantile;
    config.quantile_alpha = alpha;
    const auto obj = Objective::Create(config);
    const double eps = 1e-6;
    Rng rng(11);
    for (int i = 0; i < 60; ++i) {
      const float label = static_cast<float>(rng.Normal() * 2.0);
      // Keep the evaluation point away from the y == m kink, where the
      // loss is non-differentiable and FD straddles two branches.
      double margin = rng.Uniform(-4.0, 4.0);
      if (std::abs(margin - label) < 10 * eps) margin += 1.0;
      const GradientPair gp = obj->RowGradient(label, margin);
      const double g_fd = (PinballPointLoss(label, margin + eps, alpha) -
                           PinballPointLoss(label, margin - eps, alpha)) /
                          (2 * eps);
      EXPECT_NEAR(gp.g, g_fd, 1e-4) << "alpha=" << alpha;
      EXPECT_FLOAT_EQ(gp.h, 1.0f);
    }
  }
}

TEST(Quantile, TieTakesUpperBranch) {
  ObjectiveConfig config;
  config.kind = ObjectiveKind::kQuantile;
  config.quantile_alpha = 0.25;
  const auto obj = Objective::Create(config);
  // m == y: the subgradient of the m >= y branch, 1 - alpha.
  EXPECT_FLOAT_EQ(obj->RowGradient(2.0f, 2.0).g, 0.75f);
  EXPECT_FLOAT_EQ(obj->RowGradient(2.0f, 3.0).g, 0.75f);
  EXPECT_FLOAT_EQ(obj->RowGradient(2.0f, 1.0).g, -0.25f);
  EXPECT_DOUBLE_EQ(obj->Transform(1.5), 1.5);  // identity
  EXPECT_DOUBLE_EQ(obj->InitialMargin(0.3), 0.3);
}

// ---------- Poisson ----------

double PoissonPointLoss(double label, double margin) {
  return std::exp(margin) - label * margin;
}

TEST(Poisson, GradientsMatchFiniteDifferences) {
  ObjectiveConfig config;
  config.kind = ObjectiveKind::kPoisson;
  config.max_delta_step = 0.7;
  const auto obj = Objective::Create(config);
  const double eps = 1e-6;
  Rng rng(13);
  for (int i = 0; i < 60; ++i) {
    const float label = static_cast<float>(rng.NextBelow(9));
    const double margin = rng.Uniform(-2.0, 2.0);
    const GradientPair gp = obj->RowGradient(label, margin);
    const double g_fd = (PoissonPointLoss(label, margin + eps) -
                         PoissonPointLoss(label, margin - eps)) /
                        (2 * eps);
    EXPECT_NEAR(gp.g, g_fd, 1e-3);
    // The hessian is the true exp(m) inflated by exp(max_delta_step):
    // capped newton steps for near-empty leaves.
    EXPECT_NEAR(gp.h, std::exp(margin + 0.7), 1e-4 * gp.h);
  }
}

TEST(Poisson, TransformIsExpAndInitialMarginIsLog) {
  const auto obj = Objective::Create(ObjectiveKind::kPoisson);
  EXPECT_DOUBLE_EQ(obj->Transform(0.0), 1.0);
  EXPECT_NEAR(obj->Transform(std::log(3.0)), 3.0, 1e-12);
  EXPECT_NEAR(obj->Transform(obj->InitialMargin(2.5)), 2.5, 1e-12);
}

// ---------- batch interface ----------

TEST(Objective, BatchDefaultMatchesRowKernelForAllPointwise) {
  Rng rng(17);
  const size_t n = 2000;
  std::vector<float> labels(n);
  std::vector<double> margins(n);
  for (size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<float>(rng.NextBelow(5));
    margins[i] = rng.Uniform(-2.0, 2.0);
  }
  ThreadPool pool(4);
  for (ObjectiveKind kind :
       {ObjectiveKind::kLogistic, ObjectiveKind::kSquaredError,
        ObjectiveKind::kQuantile, ObjectiveKind::kPoisson}) {
    const auto obj = Objective::Create(kind);
    GradientContext ctx;
    ctx.labels = &labels;
    ctx.margins = &margins;
    std::vector<GradientPair> batch;
    obj->ComputeGradients(ctx, &batch, &pool);
    ASSERT_EQ(batch.size(), n);
    for (size_t i = 0; i < n; ++i) {
      const GradientPair expect = obj->RowGradient(labels[i], margins[i]);
      EXPECT_EQ(batch[i].g, expect.g) << ToString(kind) << " row " << i;
      EXPECT_EQ(batch[i].h, expect.h) << ToString(kind) << " row " << i;
    }
  }
}

TEST(ObjectiveDeath, ListwiseHasNoRowGradient) {
  const auto obj = Objective::Create(ObjectiveKind::kLambdaRank);
  EXPECT_DEATH(obj->RowGradient(1.0f, 0.0), "list-wise");
}

TEST(ObjectiveDeath, LambdaRankRequiresGroups) {
  const auto obj = Objective::Create(ObjectiveKind::kLambdaRank);
  const std::vector<float> labels{1.0f, 0.0f};
  const std::vector<double> margins{0.0, 0.0};
  std::vector<GradientPair> out;
  EXPECT_DEATH(obj->ComputeGradients(labels, margins, &out), "query groups");
}

// ---------- LambdaRank ----------

// One two-document query at equal margins, relevances {1, 0}. All
// quantities below are closed-form:
//   ranks (score tie broken by row index): doc0 -> 1, doc1 -> 2
//   maxDCG = (2^1 - 1) / log2(2) = 1
//   |dNDCG| = (1 - 0) * |1 - 1/log2(3)| / 1 = 1 - 0.63092975357145753
//   rho = sigmoid(0) = 0.5
//   lambda = |dNDCG| * 0.5,  hessian = |dNDCG| * 0.25
TEST(LambdaRank, HandComputedTwoDocQuery) {
  const auto obj = Objective::Create(ObjectiveKind::kLambdaRank);
  const std::vector<float> labels{1.0f, 0.0f};
  const std::vector<double> margins{0.0, 0.0};
  const std::vector<uint32_t> groups{0, 2};
  GradientContext ctx;
  ctx.labels = &labels;
  ctx.margins = &margins;
  ctx.group_ptr = &groups;
  std::vector<GradientPair> out;
  obj->ComputeGradients(ctx, &out);
  ASSERT_EQ(out.size(), 2u);
  const double delta_ndcg = 1.0 - 1.0 / std::log2(3.0);
  EXPECT_NEAR(out[0].g, -delta_ndcg * 0.5, 1e-7);
  EXPECT_NEAR(out[1].g, delta_ndcg * 0.5, 1e-7);
  EXPECT_NEAR(out[0].h, delta_ndcg * 0.25, 1e-7);
  EXPECT_NEAR(out[1].h, delta_ndcg * 0.25, 1e-7);
  // Lambdas are antisymmetric: pushes cancel within the query.
  EXPECT_NEAR(out[0].g + out[1].g, 0.0, 1e-7);
}

// Three documents, distinct margins and relevances {2, 1, 0} stored in
// score-ascending rows, so the current ranking is fully inverted. Checks
// the pairwise accumulation against an independent re-derivation.
TEST(LambdaRank, HandComputedThreeDocInvertedQuery) {
  const auto obj = Objective::Create(ObjectiveKind::kLambdaRank);
  const std::vector<float> labels{2.0f, 1.0f, 0.0f};
  const std::vector<double> margins{-1.0, 0.0, 1.0};
  const std::vector<uint32_t> groups{0, 3};
  GradientContext ctx;
  ctx.labels = &labels;
  ctx.margins = &margins;
  ctx.group_ptr = &groups;
  std::vector<GradientPair> out;
  obj->ComputeGradients(ctx, &out);
  ASSERT_EQ(out.size(), 3u);

  // Ranks by descending margin: doc2 -> 1, doc1 -> 2, doc0 -> 3.
  const double disc1 = 1.0;
  const double disc2 = 1.0 / std::log2(3.0);
  const double disc3 = 1.0 / std::log2(4.0);
  const double max_dcg = 3.0 * disc1 + 1.0 * disc2;  // ideal: rel 2 then 1
  auto pair_contribution = [&](double gain_hi, double gain_lo,
                               double disc_hi, double disc_lo,
                               double margin_hi, double margin_lo) {
    const double delta =
        (gain_hi - gain_lo) * std::abs(disc_hi - disc_lo) / max_dcg;
    const double rho = 1.0 / (1.0 + std::exp(margin_hi - margin_lo));
    return std::pair<double, double>{delta * rho,
                                     delta * rho * (1.0 - rho)};
  };
  // Pairs (hi, lo): (0,1) ranks 3,2; (0,2) ranks 3,1; (1,2) ranks 2,1.
  const auto p01 = pair_contribution(3.0, 1.0, disc3, disc2, -1.0, 0.0);
  const auto p02 = pair_contribution(3.0, 0.0, disc3, disc1, -1.0, 1.0);
  const auto p12 = pair_contribution(1.0, 0.0, disc2, disc1, 0.0, 1.0);
  EXPECT_NEAR(out[0].g, -(p01.first + p02.first), 1e-6);
  EXPECT_NEAR(out[1].g, p01.first - p12.first, 1e-6);
  EXPECT_NEAR(out[2].g, p02.first + p12.first, 1e-6);
  EXPECT_NEAR(out[0].h, p01.second + p02.second, 1e-6);
  EXPECT_NEAR(out[1].h, p01.second + p12.second, 1e-6);
  EXPECT_NEAR(out[2].h, p02.second + p12.second, 1e-6);
  // The most relevant doc (bottom-ranked) is pushed up hardest.
  EXPECT_LT(out[0].g, 0.0f);
  EXPECT_GT(out[2].g, 0.0f);
}

TEST(LambdaRank, AllEqualRelevanceGivesZeroLambdasFlooredHessian) {
  const auto obj = Objective::Create(ObjectiveKind::kLambdaRank);
  const std::vector<float> labels{1.0f, 1.0f, 1.0f};
  const std::vector<double> margins{0.3, -0.2, 0.9};
  const std::vector<uint32_t> groups{0, 3};
  GradientContext ctx;
  ctx.labels = &labels;
  ctx.margins = &margins;
  ctx.group_ptr = &groups;
  std::vector<GradientPair> out;
  obj->ComputeGradients(ctx, &out);
  for (const GradientPair& gp : out) {
    EXPECT_EQ(gp.g, 0.0f);
    // Hessians are floored so the tree builder never divides by zero.
    EXPECT_GT(gp.h, 0.0f);
  }
}

TEST(LambdaRank, GradientsInvariantToThreadCount) {
  // Many variable-size queries; gradients must be bitwise identical for
  // every thread count (disjoint row ranges, serial within each query).
  Rng rng(19);
  std::vector<float> labels;
  std::vector<double> margins;
  std::vector<uint32_t> groups{0};
  for (int q = 0; q < 120; ++q) {
    const int docs = 2 + static_cast<int>(rng.NextBelow(30));
    for (int d = 0; d < docs; ++d) {
      labels.push_back(static_cast<float>(rng.NextBelow(5)));
      margins.push_back(rng.Uniform(-2.0, 2.0));
    }
    groups.push_back(static_cast<uint32_t>(labels.size()));
  }
  const auto obj = Objective::Create(ObjectiveKind::kLambdaRank);
  GradientContext ctx;
  ctx.labels = &labels;
  ctx.margins = &margins;
  ctx.group_ptr = &groups;
  std::vector<GradientPair> serial;
  obj->ComputeGradients(ctx, &serial);
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    std::vector<GradientPair> parallel;
    obj->ComputeGradients(ctx, &parallel, &pool);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].g, serial[i].g)
          << "threads=" << threads << " row " << i;
      EXPECT_EQ(parallel[i].h, serial[i].h)
          << "threads=" << threads << " row " << i;
    }
  }
}

TEST(LambdaRank, NdcgCutoffLimitsPairs) {
  // With k = 1 only pairs straddling rank 1 carry weight: swapping docs
  // both outside the top-1 cannot change NDCG@1.
  ObjectiveConfig config;
  config.kind = ObjectiveKind::kLambdaRank;
  config.ndcg_k = 1;
  const auto obj = Objective::Create(config);
  const std::vector<float> labels{0.0f, 2.0f, 1.0f};
  const std::vector<double> margins{3.0, 1.0, 0.0};  // ranks 1, 2, 3
  const std::vector<uint32_t> groups{0, 3};
  GradientContext ctx;
  ctx.labels = &labels;
  ctx.margins = &margins;
  ctx.group_ptr = &groups;
  std::vector<GradientPair> out;
  obj->ComputeGradients(ctx, &out);
  // Pair (doc1, doc2) sits at ranks 2 and 3 — no @1 contribution — so
  // doc2's only weighted pair is vs doc0... but (doc1,doc2) has unequal
  // relevance and zero |dNDCG@1|: it must contribute nothing.
  // Independent check: doc2 vs doc0 has |disc(3) - disc(1)| > 0.
  EXPECT_LT(out[1].g, 0.0f);  // rel 2 at rank 2 pushed toward rank 1
  EXPECT_GT(out[0].g, 0.0f);  // rel 0 at rank 1 pushed down
}

}  // namespace
}  // namespace harp
