// Stress and robustness tests: concurrency hammering, flag-interaction
// matrix, and fuzz-style model-IO corruption.
#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "core/model_io.h"
#include "harpgbdt.h"
#include "test_util.h"

namespace harp {
namespace {

Dataset StressData(uint32_t rows = 3000, uint64_t seed = 1201) {
  SyntheticSpec spec;
  spec.rows = rows;
  spec.features = 14;
  spec.density = 0.8;
  spec.margin_scale = 2.5;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

// Hammer the ASYNC path: many trees, many threads, deep-ish trees, so the
// spin-mutex'd queue/tree/histogram-pool interplay gets real contention.
TEST(Stress, AsyncRepeatedBuildsStayValid) {
  const Dataset train = StressData(4000);
  TrainParams p;
  p.num_trees = 20;
  p.tree_size = 7;
  p.grow_policy = GrowPolicy::kTopK;
  p.topk = 16;
  p.mode = ParallelMode::kASYNC;
  p.num_threads = 8;  // oversubscribed on purpose
  GbdtTrainer trainer(p);
  const GbdtModel model = trainer.Train(train);
  ASSERT_EQ(model.NumTrees(), 20u);
  for (const RegTree& tree : model.trees()) {
    ASSERT_TRUE(tree.CheckValid());
    uint32_t covered = 0;
    for (const TreeNode& n : tree.nodes()) {
      if (n.IsLeaf()) covered += n.num_rows;
    }
    EXPECT_EQ(covered, train.num_rows());
  }
  EXPECT_GT(Auc(train.labels(), model.Predict(train)), 0.85);
}

// Every combination of the optimization flags must produce valid models
// that learn; deterministic modes must stay deterministic.
struct FlagCase {
  ParallelMode mode;
  bool membuf;
  bool subtraction;
  double subsample;
  double colsample;
};

class FlagMatrix : public ::testing::TestWithParam<FlagCase> {};

TEST_P(FlagMatrix, TrainsValidLearningModel) {
  const FlagCase& c = GetParam();
  const Dataset train = StressData(2500, 1301);
  TrainParams p;
  p.num_trees = 8;
  p.tree_size = 5;
  p.grow_policy = GrowPolicy::kTopK;
  p.topk = 8;
  p.mode = c.mode;
  p.use_membuf = c.membuf;
  p.use_hist_subtraction = c.subtraction;
  p.subsample = c.subsample;
  p.colsample_bytree = c.colsample;
  p.num_threads = 3;

  GbdtTrainer trainer(p);
  const GbdtModel a = trainer.Train(train);
  for (const RegTree& tree : a.trees()) ASSERT_TRUE(tree.CheckValid());
  EXPECT_GT(Auc(train.labels(), a.Predict(train)), 0.75);

  if (c.mode != ParallelMode::kASYNC) {
    const GbdtModel b = trainer.Train(train);
    for (size_t t = 0; t < a.NumTrees(); ++t) {
      EXPECT_TRUE(harp::testing::TreesEqual(a.tree(t), b.tree(t)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Flags, FlagMatrix,
    ::testing::Values(
        FlagCase{ParallelMode::kDP, true, true, 1.0, 1.0},
        FlagCase{ParallelMode::kDP, false, true, 0.7, 1.0},
        FlagCase{ParallelMode::kMP, true, true, 1.0, 0.6},
        FlagCase{ParallelMode::kMP, false, false, 0.7, 0.6},
        FlagCase{ParallelMode::kSYNC, true, true, 0.8, 0.8},
        FlagCase{ParallelMode::kASYNC, true, false, 1.0, 1.0},
        FlagCase{ParallelMode::kASYNC, false, false, 0.7, 0.6}),
    [](const ::testing::TestParamInfo<FlagCase>& info) {
      const FlagCase& c = info.param;
      std::string name = ToString(c.mode);
      name += c.membuf ? "_mb" : "_ga";
      name += c.subtraction ? "_sub" : "_dir";
      name += c.subsample < 1.0 ? "_rs" : "_rf";
      name += c.colsample < 1.0 ? "_cs" : "_cf";
      return name;
    });

// Fuzz the model loader: random corruption must never crash or produce a
// structurally invalid model — it either fails cleanly or round-trips.
TEST(Stress, ModelLoaderSurvivesCorruption) {
  const Dataset train = StressData(600, 1401);
  TrainParams p;
  p.num_trees = 3;
  p.tree_size = 4;
  p.num_threads = 1;
  const GbdtModel model = GbdtTrainer(p).Train(train);
  const std::string text = SerializeModel(model);

  Rng rng(99);
  int clean_failures = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = text;
    const int edits = 1 + static_cast<int>(rng.NextBelow(4));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = rng.NextBelow(mutated.size());
      switch (rng.NextBelow(3)) {
        case 0:
          mutated[pos] = static_cast<char>('0' + rng.NextBelow(10));
          break;
        case 1:
          mutated.erase(pos, 1 + rng.NextBelow(5));
          break;
        default:
          mutated.insert(pos, "x");
          break;
      }
    }
    GbdtModel out;
    std::string error;
    if (!DeserializeModel(mutated, &out, &error)) {
      ++clean_failures;
      EXPECT_FALSE(error.empty());
    } else {
      // Rarely a mutation is benign; the result must still be valid.
      for (const RegTree& tree : out.trees()) {
        EXPECT_TRUE(tree.CheckValid());
      }
    }
  }
  // The vast majority of random edits must be rejected.
  EXPECT_GT(clean_failures, 150);
}

// Thread-count sweep on one problem: every deterministic mode produces the
// same model at every thread count (the strongest runtime-independence
// property the design promises).
TEST(Stress, ThreadCountInvarianceAcrossModes) {
  const Dataset train = StressData(2000, 1501);
  for (ParallelMode mode :
       {ParallelMode::kDP, ParallelMode::kMP, ParallelMode::kSYNC}) {
    GbdtModel reference;
    for (int threads : {1, 2, 5}) {
      TrainParams p;
      p.num_trees = 4;
      p.tree_size = 5;
      p.mode = mode;
      p.num_threads = threads;
      p.feature_blk_size = 3;
      p.node_blk_size = 2;
      const GbdtModel model = GbdtTrainer(p).Train(train);
      if (threads == 1) {
        reference = model;
        continue;
      }
      for (size_t t = 0; t < reference.NumTrees(); ++t) {
        EXPECT_TRUE(
            harp::testing::TreesEqual(reference.tree(t), model.tree(t)))
            << ToString(mode) << " threads=" << threads;
      }
    }
  }
}

// Degenerate inputs must not crash: constant labels, constant features,
// single row, all-missing feature.
TEST(Stress, DegenerateInputs) {
  TrainParams p;
  p.num_trees = 2;
  p.tree_size = 3;
  p.num_threads = 2;
  p.min_split_loss = 0.0;

  {
    // Constant labels: gradients vanish after the base score fits; trees
    // should be single leaves, prediction ~the constant.
    Dataset ds = Dataset::FromDense(
        8, 2, std::vector<float>(16, 1.0f), std::vector<float>(8, 1.0f));
    const GbdtModel model = GbdtTrainer(p).Train(ds);
    for (const RegTree& tree : model.trees()) {
      EXPECT_TRUE(tree.CheckValid());
    }
    for (double prob : model.Predict(ds)) EXPECT_GT(prob, 0.5);
  }
  {
    // One row.
    Dataset ds = Dataset::FromDense(1, 3, {1.0f, 2.0f, 3.0f}, {1.0f});
    const GbdtModel model = GbdtTrainer(p).Train(ds);
    EXPECT_EQ(model.NumTrees(), 2u);
  }
  {
    // A feature that is always missing plus an informative one.
    std::vector<float> values;
    std::vector<float> labels;
    for (int r = 0; r < 40; ++r) {
      values.push_back(kMissingValue);
      values.push_back(static_cast<float>(r % 2));
      labels.push_back(static_cast<float>(r % 2));
    }
    Dataset ds = Dataset::FromDense(40, 2, std::move(values),
                                    std::move(labels));
    const GbdtModel model = GbdtTrainer(p).Train(ds);
    EXPECT_GT(Auc(ds.labels(), model.Predict(ds)), 0.95);
  }
}

}  // namespace
}  // namespace harp
