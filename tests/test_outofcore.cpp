// Out-of-core path: mmap-backed caches must be bit-equivalent to heap
// loads, corruption must be caught through the mapping, and the mapping
// itself must stay read-only.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

#include "core/gbdt.h"
#include "core/model_io.h"
#include "data/binary_cache.h"
#include "data/quantile.h"
#include "data/row_block_prefetcher.h"
#include "data/synthetic.h"

namespace harp {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
}

// Grouped dataset -> binned cache on disk; groups exercise the optional
// trailing section and give group_ptr something to round-trip.
std::string WriteGroupedBinnedCache(const std::string& path) {
  RankingSpec spec;
  spec.num_queries = 40;
  const Dataset data = GenerateRankingSynthetic(spec);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(data, QuantileCuts::Compute(data, 32));
  std::string error;
  EXPECT_TRUE(WriteBinnedCache(path, matrix, data.labels(), &error)) << error;
  return path;
}

TEST(OutOfCore, HeapAndMmapBinnedLoadsAreBitIdentical) {
  const std::string path =
      WriteGroupedBinnedCache("/tmp/harp_ooc_test_ident.cache");

  BinnedMatrix heap_m, map_m;
  std::vector<float> heap_labels, map_labels;
  std::string error;
  ASSERT_TRUE(ReadBinnedCache(path, &heap_m, &heap_labels, &error)) << error;

  CacheReadOptions opts;
  opts.use_mmap = true;
  CacheReadInfo info;
  ASSERT_TRUE(
      ReadBinnedCache(path, &map_m, &map_labels, &error, opts, &info))
      << error;
  ASSERT_TRUE(info.mapped) << info.note;
  EXPECT_TRUE(map_m.IsMapped());
  EXPECT_FALSE(heap_m.IsMapped());

  ASSERT_EQ(heap_m.num_rows(), map_m.num_rows());
  ASSERT_EQ(heap_m.num_features(), map_m.num_features());
  EXPECT_EQ(heap_labels, map_labels);
  // The bin image is byte-identical between the heap copy and the mapping.
  const size_t bins =
      static_cast<size_t>(heap_m.num_rows()) * heap_m.num_features();
  EXPECT_EQ(std::memcmp(heap_m.BinData(), map_m.BinData(), bins), 0);
  // Satellites of the matrix survive the mmap path too — group_ptr
  // included (it rides in the optional trailing section).
  ASSERT_TRUE(map_m.has_groups());
  EXPECT_EQ(heap_m.group_ptr(), map_m.group_ptr());
  for (uint32_t f = 0; f <= heap_m.num_features(); ++f) {
    EXPECT_EQ(heap_m.BinOffsetsData()[f], map_m.BinOffsetsData()[f]);
  }
  std::remove(path.c_str());
}

TEST(OutOfCore, MemoryBytesSeparatesHeapFromMapped) {
  const std::string path =
      WriteGroupedBinnedCache("/tmp/harp_ooc_test_mem.cache");

  BinnedMatrix heap_m, map_m;
  std::vector<float> labels;
  std::string error;
  ASSERT_TRUE(ReadBinnedCache(path, &heap_m, &labels, &error)) << error;
  CacheReadOptions opts;
  opts.use_mmap = true;
  ASSERT_TRUE(ReadBinnedCache(path, &map_m, &labels, &error, opts)) << error;

  const size_t bins =
      static_cast<size_t>(heap_m.num_rows()) * heap_m.num_features();
  // Heap load owns the bins; mapped load reports them as mapped bytes and
  // its heap footprint drops by exactly the bin image.
  EXPECT_EQ(heap_m.MappedBytes(), 0u);
  EXPECT_EQ(map_m.MappedBytes(), bins);
  EXPECT_GE(heap_m.MemoryBytes(), bins);
  EXPECT_EQ(heap_m.MemoryBytes() - bins, map_m.MemoryBytes());
  std::remove(path.c_str());
}

TEST(OutOfCore, HeapAndMmapDatasetLoadsAreBitIdentical) {
  SyntheticSpec spec;
  spec.rows = 700;
  spec.features = 9;
  const Dataset original = GenerateSynthetic(spec);
  const std::string path = "/tmp/harp_ooc_test_ds.cache";
  std::string error;
  CacheWriteOptions wopts;
  wopts.page_align = true;
  ASSERT_TRUE(WriteDatasetCache(path, original, &error, wopts)) << error;

  Dataset heap_ds, map_ds;
  ASSERT_TRUE(ReadDatasetCache(path, &heap_ds, &error)) << error;
  CacheReadOptions ropts;
  ropts.use_mmap = true;
  CacheReadInfo info;
  ASSERT_TRUE(ReadDatasetCache(path, &map_ds, &error, ropts, &info)) << error;
  ASSERT_TRUE(info.mapped) << info.note;

  EXPECT_EQ(heap_ds.labels(), map_ds.labels());
  const size_t floats =
      static_cast<size_t>(original.num_rows()) * original.num_features();
  EXPECT_EQ(std::memcmp(heap_ds.dense_data(), map_ds.dense_data(),
                        floats * sizeof(float)),
            0);
  EXPECT_EQ(map_ds.MappedBytes(), floats * sizeof(float));
  EXPECT_EQ(heap_ds.MappedBytes(), 0u);
  EXPECT_LT(map_ds.MemoryBytes(), heap_ds.MemoryBytes());
  std::remove(path.c_str());
}

TEST(OutOfCore, TruncationMidSectionRejectedOnBothPaths) {
  const std::string path =
      WriteGroupedBinnedCache("/tmp/harp_ooc_test_trunc.cache");
  const std::string content = ReadAll(path);
  // Cut inside the bin payload (the aligned tail section), past the
  // header and early sections so only the mapped-size check can catch it.
  WriteAll(path, content.substr(0, content.size() - content.size() / 3));

  BinnedMatrix m;
  std::vector<float> labels;
  std::string error;
  EXPECT_FALSE(ReadBinnedCache(path, &m, &labels, &error));
  CacheReadOptions opts;
  opts.use_mmap = true;
  EXPECT_FALSE(ReadBinnedCache(path, &m, &labels, &error, opts));
  std::remove(path.c_str());
}

TEST(OutOfCore, ChecksumVerifiedOverTheMappedImage) {
  const std::string path =
      WriteGroupedBinnedCache("/tmp/harp_ooc_test_sum.cache");
  std::string content = ReadAll(path);
  // Flip one bit deep inside the page-aligned bin payload; the streaming
  // checksum over the mapping must reject the file before any training
  // code can consume a corrupt bin.
  content[content.size() - 4096] ^= 0x10;
  WriteAll(path, content);

  BinnedMatrix m;
  std::vector<float> labels;
  std::string error;
  CacheReadOptions opts;
  opts.use_mmap = true;
  EXPECT_FALSE(ReadBinnedCache(path, &m, &labels, &error, opts));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(OutOfCore, PageUnalignedTailStillMaps) {
  // The checksum footer lands wherever the bin payload ends, so the file
  // length is almost never a page multiple; the mapping must cover the
  // ragged tail page.
  const std::string path =
      WriteGroupedBinnedCache("/tmp/harp_ooc_test_tail.cache");
  const std::string content = ReadAll(path);
  ASSERT_NE(content.size() % 4096, 0u)
      << "grouped cache unexpectedly page-sized; pick a different spec";

  BinnedMatrix m;
  std::vector<float> labels;
  std::string error;
  CacheReadOptions opts;
  opts.use_mmap = true;
  CacheReadInfo info;
  ASSERT_TRUE(ReadBinnedCache(path, &m, &labels, &error, opts, &info))
      << error;
  EXPECT_TRUE(info.mapped) << info.note;
  // Touch the last row (it lives in the tail page).
  (void)m.RowBins(m.num_rows() - 1)[m.num_features() - 1];
  std::remove(path.c_str());
}

using OutOfCoreDeathTest = ::testing::Test;

TEST(OutOfCoreDeathTest, WritingThroughTheMappingDies) {
  const std::string path =
      WriteGroupedBinnedCache("/tmp/harp_ooc_test_ro.cache");
  BinnedMatrix m;
  std::vector<float> labels;
  std::string error;
  CacheReadOptions opts;
  opts.use_mmap = true;
  ASSERT_TRUE(ReadBinnedCache(path, &m, &labels, &error, opts)) << error;
  ASSERT_TRUE(m.IsMapped());
  // The bin image is PROT_READ; a stray write through the const pointer
  // must fault instead of silently corrupting training data.
  uint8_t* bins = const_cast<uint8_t*>(m.BinData());
  EXPECT_DEATH({ bins[0] = 0xFF; }, "");
  // MutableHeap() refuses a mapped backend outright.
  BinMatrixStorage storage = m.storage();
  EXPECT_DEATH({ (void)storage.MutableHeap(); }, "");
  std::remove(path.c_str());
}

TEST(OutOfCore, HeapAndMmapTrainingProduceIdenticalModels) {
  SyntheticSpec spec;
  spec.rows = 4000;
  spec.features = 16;
  spec.seed = 77;
  const Dataset data = GenerateSynthetic(spec);
  const BinnedMatrix built =
      BinnedMatrix::Build(data, QuantileCuts::Compute(data, 64));
  const std::string path = "/tmp/harp_ooc_test_train.cache";
  std::string error;
  ASSERT_TRUE(WriteBinnedCache(path, built, data.labels(), &error)) << error;

  BinnedMatrix heap_m, map_m;
  std::vector<float> heap_labels, map_labels;
  ASSERT_TRUE(ReadBinnedCache(path, &heap_m, &heap_labels, &error)) << error;
  CacheReadOptions opts;
  opts.use_mmap = true;
  ASSERT_TRUE(ReadBinnedCache(path, &map_m, &map_labels, &error, opts))
      << error;
  ASSERT_TRUE(map_m.IsMapped());

  TrainParams p;
  p.num_trees = 6;
  p.tree_size = 5;
  p.grow_policy = GrowPolicy::kTopK;
  p.topk = 4;
  p.mode = ParallelMode::kSYNC;
  p.num_threads = 2;
  p.prefetch_window_bytes = 64 << 10;  // tiny window: sweep wraps often

  TrainStats heap_stats, map_stats;
  const GbdtModel heap_model =
      GbdtTrainer(p).TrainBinned(heap_m, heap_labels, &heap_stats);
  const GbdtModel map_model =
      GbdtTrainer(p).TrainBinned(map_m, map_labels, &map_stats);

  const std::string path_a = "/tmp/harp_ooc_test_model_a.bin";
  const std::string path_b = "/tmp/harp_ooc_test_model_b.bin";
  ASSERT_TRUE(SaveModel(path_a, heap_model, &error)) << error;
  ASSERT_TRUE(SaveModel(path_b, map_model, &error)) << error;
  EXPECT_EQ(ReadAll(path_a), ReadAll(path_b));

  // The streaming counters only tick on the mapped run.
  EXPECT_EQ(heap_stats.mapped_bytes, 0);
  EXPECT_GT(map_stats.mapped_bytes, 0);
  std::remove(path.c_str());
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(OutOfCore, PrefetcherSweepsAndStops) {
  const std::string path =
      WriteGroupedBinnedCache("/tmp/harp_ooc_test_sweep.cache");
  BinnedMatrix m;
  std::vector<float> labels;
  std::string error;
  CacheReadOptions opts;
  opts.use_mmap = true;
  ASSERT_TRUE(ReadBinnedCache(path, &m, &labels, &error, opts)) << error;

  RowBlockPrefetcher prefetcher(m.storage(), 64 << 10);
  prefetcher.Start();
  prefetcher.Pulse();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  prefetcher.Pulse();
  prefetcher.Stop();
  const RowBlockPrefetcher::Stats stats = prefetcher.GetStats();
  EXPECT_GT(stats.retired_bytes, 0);
  // Stop() is idempotent and a second Start() after Stop() must not hang.
  prefetcher.Stop();

  // On heap storage the prefetcher is a no-op that never spawns a thread.
  BinnedMatrix heap_m;
  ASSERT_TRUE(ReadBinnedCache(path, &heap_m, &labels, &error)) << error;
  RowBlockPrefetcher noop(heap_m.storage(), 64 << 10);
  noop.Start();
  noop.Stop();
  EXPECT_EQ(noop.GetStats().retired_bytes, 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace harp
