// Unit tests for the parallel runtime: ThreadPool, SpinMutex,
// SharedPriorityQueue, WorkTracker.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/spin_mutex.h"
#include "parallel/thread_pool.h"
#include "parallel/work_queue.h"

namespace harp {
namespace {

class ThreadPoolParam : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Threads, ThreadPoolParam,
                         ::testing::Values(1, 2, 4, 7));

TEST_P(ThreadPoolParam, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(GetParam());
  const int64_t n = 10001;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](int64_t begin, int64_t end, int) {
    for (int64_t i = begin; i < end; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[static_cast<size_t>(i)], 1);
}

TEST_P(ThreadPoolParam, ParallelForDynamicCoversEveryIndexOnce) {
  ThreadPool pool(GetParam());
  const int64_t n = 9973;  // prime, awkward chunking
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelForDynamic(n, 17, [&](int64_t begin, int64_t end, int) {
    for (int64_t i = begin; i < end; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[static_cast<size_t>(i)], 1);
}

TEST_P(ThreadPoolParam, SumReduction) {
  ThreadPool pool(GetParam());
  const int64_t n = 100000;
  std::atomic<int64_t> total{0};
  pool.ParallelFor(n, [&](int64_t begin, int64_t end, int) {
    int64_t local = 0;
    for (int64_t i = begin; i < end; ++i) local += i;
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), n * (n - 1) / 2);
}

TEST_P(ThreadPoolParam, RunOnAllThreadsUniqueIds) {
  ThreadPool pool(GetParam());
  std::vector<std::atomic<int>> seen(static_cast<size_t>(GetParam()));
  pool.RunOnAllThreads([&](int id) {
    ASSERT_GE(id, 0);
    ASSERT_LT(id, GetParam());
    seen[static_cast<size_t>(id)].fetch_add(1);
  });
  for (int i = 0; i < GetParam(); ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)], 1);
  }
}

TEST_P(ThreadPoolParam, RunTasksRunsAll) {
  ThreadPool pool(GetParam());
  std::vector<std::atomic<int>> done(37);
  std::vector<std::function<void()>> tasks;
  for (size_t i = 0; i < done.size(); ++i) {
    tasks.push_back([&done, i] { done[i].fetch_add(1); });
  }
  pool.RunTasks(tasks);
  for (auto& d : done) EXPECT_EQ(d.load(), 1);
}

TEST_P(ThreadPoolParam, BackToBackRegions) {
  ThreadPool pool(GetParam());
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(100, [&](int64_t begin, int64_t end, int) {
      total.fetch_add(end - begin);
    });
  }
  EXPECT_EQ(total.load(), 50 * 100);
}

TEST_P(ThreadPoolParam, ExceptionPropagatesToCaller) {
  ThreadPool pool(GetParam());
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](int64_t begin, int64_t, int) {
                         if (begin == 0) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must remain usable after an exception.
  std::atomic<int> ran{0};
  pool.ParallelFor(10, [&](int64_t b, int64_t e, int) {
    ran.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, EmptyRangeIsNoOp) {
  ThreadPool pool(3);
  bool called = false;
  pool.ParallelFor(0, [&](int64_t, int64_t, int) { called = true; });
  pool.ParallelForDynamic(-5, 1, [&](int64_t, int64_t, int) { called = true; });
  EXPECT_FALSE(called);
  EXPECT_EQ(pool.Snapshot().parallel_regions, 0);
}

TEST(ThreadPool, CountsRegionsAndBusyTime) {
  ThreadPool pool(2);
  pool.ResetStats();
  for (int i = 0; i < 5; ++i) {
    pool.ParallelFor(1000, [&](int64_t b, int64_t e, int) {
      double x = 0;
      for (int64_t j = b; j < e; ++j) x += static_cast<double>(j);
      volatile double sink = x;
      (void)sink;
    });
  }
  const SyncSnapshot s = pool.Snapshot();
  EXPECT_EQ(s.parallel_regions, 5);
  EXPECT_GT(s.busy_ns, 0);
  EXPECT_EQ(s.threads, 2);
}

TEST(ThreadPool, SnapshotDeltaSubtracts) {
  ThreadPool pool(2);
  pool.ParallelFor(10, [](int64_t, int64_t, int) {});
  const SyncSnapshot before = pool.Snapshot();
  pool.ParallelFor(10, [](int64_t, int64_t, int) {});
  pool.ParallelFor(10, [](int64_t, int64_t, int) {});
  const SyncSnapshot delta = pool.Snapshot() - before;
  EXPECT_EQ(delta.parallel_regions, 2);
}

TEST(ThreadPool, UtilizationBounded) {
  ThreadPool pool(4);
  pool.ResetStats();
  const int64_t start = NowNs();
  pool.ParallelFor(200000, [&](int64_t b, int64_t e, int) {
    double x = 0;
    for (int64_t j = b; j < e; ++j) x += static_cast<double>(j);
    volatile double sink = x;
    (void)sink;
  });
  const int64_t wall = NowNs() - start;
  const double util = pool.Snapshot().Utilization(wall);
  EXPECT_GT(util, 0.0);
  EXPECT_LE(util, 1.05);  // small clock-skew slack
}

TEST(ThreadPool, AddSpinCountersFoldsIn) {
  ThreadPool pool(1);
  SpinCounters c;
  c.acquires = 10;
  c.contended = 2;
  c.wait_ns = 500;
  pool.AddSpinCounters(c);
  pool.AddSpinCounters(c);
  const SyncSnapshot s = pool.Snapshot();
  EXPECT_EQ(s.spin_acquires, 20);
  EXPECT_EQ(s.spin_contended, 4);
  EXPECT_EQ(s.spin_wait_ns, 1000);
}

TEST(ThreadPool, DefaultThreadsHonoursEnv) {
  ::setenv("HARP_BENCH_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::DefaultThreads(), 3);
  ::unsetenv("HARP_BENCH_THREADS");
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

// ---------- SyncSnapshot arithmetic ----------

TEST(SyncSnapshot, OverheadFormulas) {
  SyncSnapshot s;
  s.threads = 4;
  s.busy_ns = 600;
  s.barrier_wait_ns = 400;
  s.spin_wait_ns = 150;
  EXPECT_DOUBLE_EQ(s.BarrierOverhead(), 0.4);
  EXPECT_DOUBLE_EQ(s.SpinOverhead(), 0.2);
  EXPECT_DOUBLE_EQ(s.Utilization(1000), 600.0 / 4000.0);
  SyncSnapshot zero;
  EXPECT_DOUBLE_EQ(zero.BarrierOverhead(), 0.0);
  EXPECT_DOUBLE_EQ(zero.Utilization(0), 0.0);
}

// ---------- SpinMutex ----------

TEST(SpinMutex, MutualExclusion) {
  SpinMutex mutex;
  int64_t counter = 0;
  ThreadPool pool(4);
  pool.ParallelForDynamic(10000, 1, [&](int64_t b, int64_t e, int) {
    for (int64_t i = b; i < e; ++i) {
      std::lock_guard<SpinMutex> lock(mutex);
      ++counter;  // unprotected increment would lose updates
    }
  });
  EXPECT_EQ(counter, 10000);
  EXPECT_EQ(mutex.GetCounters().acquires, 10000);
}

TEST(SpinMutex, TryLock) {
  SpinMutex mutex;
  EXPECT_TRUE(mutex.try_lock());
  EXPECT_FALSE(mutex.try_lock());
  mutex.unlock();
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(SpinMutex, CountersResetAndContention) {
  SpinMutex mutex;
  mutex.lock();
  mutex.unlock();
  EXPECT_EQ(mutex.GetCounters().acquires, 1);
  mutex.ResetCounters();
  EXPECT_EQ(mutex.GetCounters().acquires, 0);

  // Force contention: one thread holds the lock while another waits.
  mutex.lock();
  std::thread waiter([&] {
    mutex.lock();
    mutex.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  mutex.unlock();
  waiter.join();
  const SpinCounters c = mutex.GetCounters();
  EXPECT_EQ(c.acquires, 2);
  EXPECT_EQ(c.contended, 1);
  EXPECT_GT(c.wait_ns, 0);
}

// ---------- SharedPriorityQueue ----------

TEST(SharedPriorityQueue, PopsInPriorityOrder) {
  SharedPriorityQueue<int> queue;  // std::less -> max-heap
  for (int v : {3, 1, 4, 1, 5, 9, 2, 6}) queue.Push(v);
  std::vector<int> popped;
  int v = 0;
  while (queue.TryPop(&v)) popped.push_back(v);
  const std::vector<int> expected{9, 6, 5, 4, 3, 2, 1, 1};
  EXPECT_EQ(popped, expected);
  EXPECT_FALSE(queue.TryPop(&v));
}

TEST(SharedPriorityQueue, ConcurrentPushPopConservesItems) {
  SharedPriorityQueue<int> queue;
  const int per_thread = 2000;
  ThreadPool pool(4);
  std::atomic<int64_t> pop_sum{0};
  std::atomic<int> popped_count{0};
  pool.RunOnAllThreads([&](int id) {
    if (id % 2 == 0) {
      for (int i = 0; i < per_thread; ++i) queue.Push(id * per_thread + i);
    } else {
      int v = 0;
      // Pop opportunistically while producers run.
      for (int i = 0; i < per_thread; ++i) {
        if (queue.TryPop(&v)) {
          pop_sum.fetch_add(v);
          popped_count.fetch_add(1);
        }
      }
    }
  });
  // Drain the rest single-threaded.
  int v = 0;
  while (queue.TryPop(&v)) {
    pop_sum.fetch_add(v);
    popped_count.fetch_add(1);
  }
  EXPECT_EQ(popped_count.load(), 2 * per_thread);
  int64_t expected = 0;
  for (int id : {0, 2}) {
    for (int i = 0; i < per_thread; ++i) expected += id * per_thread + i;
  }
  EXPECT_EQ(pop_sum.load(), expected);
}

// ---------- WorkTracker ----------

TEST(WorkTracker, TracksOutstanding) {
  WorkTracker tracker;
  EXPECT_TRUE(tracker.Quiescent());
  tracker.Add(3);
  EXPECT_EQ(tracker.Outstanding(), 3);
  tracker.Done();
  tracker.Done(2);
  EXPECT_TRUE(tracker.Quiescent());
}

TEST(WorkTracker, WaitQuiescentBlocksUntilDone) {
  WorkTracker tracker;
  tracker.Add();
  std::thread finisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    tracker.Done();
  });
  tracker.WaitQuiescent();
  EXPECT_TRUE(tracker.Quiescent());
  finisher.join();
}

}  // namespace
}  // namespace harp
