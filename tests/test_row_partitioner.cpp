// Tests for RowPartitioner: NodeMap semantics, MemBuf layout, stable
// parallel partition, margin scatter, arena steady-state allocation,
// batched split application, fused child sums, concurrent disjoint splits.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "core/row_partitioner.h"
#include "core/tree_builder.h"
#include "parallel/thread_pool.h"
#include "test_util.h"

namespace harp {
namespace {

using harp::testing::MakeDataset;
using harp::testing::MakeGradients;

struct PartitionCase {
  bool membuf;
  int threads;
  bool parallel_split;  // big node -> internally parallel partition
};

class PartitionerSweep : public ::testing::TestWithParam<PartitionCase> {};

TEST_P(PartitionerSweep, ApplySplitInvariants) {
  const PartitionCase& c = GetParam();
  // >= 8192 rows triggers the parallel partition path.
  const uint32_t rows = c.parallel_split ? 12000 : 900;
  const Dataset ds = MakeDataset(rows, 6, 0.8, 51);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16));
  const auto gh = MakeGradients(rows, 52);

  ThreadPool pool(c.threads);
  RowPartitioner partitioner(rows, c.membuf);
  partitioner.Reset(gh, 8, &pool);
  EXPECT_EQ(partitioner.NodeSize(0), rows);

  const uint32_t feature = 1;
  const uint32_t split_bin = std::max(1u, (matrix.NumBins(feature) - 1) / 2);
  const bool default_left = true;
  partitioner.ApplySplit(0, 1, 2, matrix, feature, split_bin, default_left,
                         &pool);

  // Invariant 1: sizes add up, parent freed.
  EXPECT_EQ(partitioner.NodeSize(1) + partitioner.NodeSize(2), rows);
  EXPECT_EQ(partitioner.NodeSize(0), 0u);

  // Invariant 2: children are a disjoint cover of all rows and respect the
  // split predicate; order within each child preserves the parent order
  // (stability) — parent order was ascending row ids.
  std::set<uint32_t> seen;
  uint32_t prev_left = 0;
  bool first_left = true;
  partitioner.ForEachRowRange(1, 0, partitioner.NodeSize(1),
                              [&](uint32_t rid, float g, float h) {
                                EXPECT_TRUE(seen.insert(rid).second);
                                const uint8_t bin = matrix.Bin(rid, feature);
                                EXPECT_TRUE(bin == 0 ? default_left
                                                     : bin <= split_bin);
                                EXPECT_FLOAT_EQ(g, gh[rid].g);
                                EXPECT_FLOAT_EQ(h, gh[rid].h);
                                if (!first_left) {
                                  EXPECT_GT(rid, prev_left);
                                }
                                prev_left = rid;
                                first_left = false;
                              });
  uint32_t prev_right = 0;
  bool first_right = true;
  partitioner.ForEachRowRange(2, 0, partitioner.NodeSize(2),
                              [&](uint32_t rid, float, float) {
                                EXPECT_TRUE(seen.insert(rid).second);
                                const uint8_t bin = matrix.Bin(rid, feature);
                                EXPECT_TRUE(bin == 0 ? !default_left
                                                     : bin > split_bin);
                                if (!first_right) {
                                  EXPECT_GT(rid, prev_right);
                                }
                                prev_right = rid;
                                first_right = false;
                              });
  EXPECT_EQ(seen.size(), rows);
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, PartitionerSweep,
    ::testing::Values(PartitionCase{true, 1, false},
                      PartitionCase{true, 4, false},
                      PartitionCase{false, 4, false},
                      PartitionCase{true, 4, true},
                      PartitionCase{false, 3, true},
                      PartitionCase{false, 1, true}));

TEST(RowPartitioner, NodeSumMatchesDirectSum) {
  const uint32_t rows = 6000;
  const auto gh = MakeGradients(rows, 61);
  ThreadPool pool(4);
  for (bool membuf : {true, false}) {
    RowPartitioner partitioner(rows, membuf);
    partitioner.Reset(gh, 4, &pool);
    GHPair expected;
    for (const auto& g : gh) expected.Add(g.g, g.h);
    const GHPair serial = partitioner.NodeSum(0, nullptr);
    const GHPair parallel = partitioner.NodeSum(0, &pool);
    EXPECT_NEAR(serial.g, expected.g, 1e-6);
    EXPECT_NEAR(parallel.g, expected.g, 1e-6);
    EXPECT_NEAR(parallel.h, expected.h, 1e-6);
  }
}

TEST(RowPartitioner, SerialAndParallelPartitionIdentical) {
  const uint32_t rows = 20000;  // above the parallel threshold
  const Dataset ds = MakeDataset(rows, 4, 0.9, 71);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16));
  const auto gh = MakeGradients(rows, 72);

  ThreadPool pool(4);
  RowPartitioner parallel(rows, true);
  parallel.Reset(gh, 4, &pool);
  parallel.ApplySplit(0, 1, 2, matrix, 0, 2, false, &pool);

  RowPartitioner serial(rows, true);
  serial.Reset(gh, 4, nullptr);
  serial.ApplySplit(0, 1, 2, matrix, 0, 2, false, nullptr);

  for (int node : {1, 2}) {
    ASSERT_EQ(parallel.NodeSize(node), serial.NodeSize(node));
    const auto a = parallel.NodeEntries(node);
    const auto b = serial.NodeEntries(node);
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].rid, b[i].rid) << "node " << node << " pos " << i;
    }
  }
}

TEST(RowPartitioner, MembufAndGatherSeeSameRows) {
  const uint32_t rows = 1500;
  const Dataset ds = MakeDataset(rows, 5, 0.85, 81);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16));
  const auto gh = MakeGradients(rows, 82);

  RowPartitioner with(rows, true);
  RowPartitioner without(rows, false);
  with.Reset(gh, 8, nullptr);
  without.Reset(gh, 8, nullptr);
  with.ApplySplit(0, 1, 2, matrix, 3, 1, true, nullptr);
  without.ApplySplit(0, 1, 2, matrix, 3, 1, true, nullptr);

  for (int node : {1, 2}) {
    std::vector<uint32_t> a;
    std::vector<uint32_t> b;
    std::vector<float> ga;
    std::vector<float> gb;
    with.ForEachRowRange(node, 0, with.NodeSize(node),
                         [&](uint32_t rid, float g, float) {
                           a.push_back(rid);
                           ga.push_back(g);
                         });
    without.ForEachRowRange(node, 0, without.NodeSize(node),
                            [&](uint32_t rid, float g, float) {
                              b.push_back(rid);
                              gb.push_back(g);
                            });
    EXPECT_EQ(a, b);
    EXPECT_EQ(ga, gb);
  }
}

TEST(RowPartitioner, MultiLevelSplitsKeepDisjointCover) {
  const uint32_t rows = 3000;
  const Dataset ds = MakeDataset(rows, 6, 0.8, 91);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16));
  const auto gh = MakeGradients(rows, 92);
  RowPartitioner partitioner(rows, true);
  partitioner.Reset(gh, 16, nullptr);
  partitioner.ApplySplit(0, 1, 2, matrix, 0, 2, false, nullptr);
  partitioner.ApplySplit(1, 3, 4, matrix, 1, 1, true, nullptr);
  partitioner.ApplySplit(2, 5, 6, matrix, 2, 3, false, nullptr);

  std::set<uint32_t> seen;
  uint32_t total = 0;
  for (int leaf : {3, 4, 5, 6}) {
    total += partitioner.NodeSize(leaf);
    partitioner.ForEachRowRange(leaf, 0, partitioner.NodeSize(leaf),
                                [&](uint32_t rid, float, float) {
                                  EXPECT_TRUE(seen.insert(rid).second);
                                });
  }
  EXPECT_EQ(total, rows);
  EXPECT_EQ(seen.size(), rows);
}

TEST(RowPartitioner, AddToMargins) {
  const uint32_t rows = 100;
  const Dataset ds = MakeDataset(rows, 3, 1.0, 95);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 8));
  const auto gh = MakeGradients(rows, 96);
  RowPartitioner partitioner(rows, true);
  partitioner.Reset(gh, 4, nullptr);
  partitioner.ApplySplit(0, 1, 2, matrix, 0, 1, false, nullptr);

  std::vector<double> margins(rows, 1.0);
  partitioner.AddToMargins(1, 0.5, &margins);
  partitioner.AddToMargins(2, -0.25, &margins);
  for (uint32_t r = 0; r < rows; ++r) {
    const uint8_t bin = matrix.Bin(r, 0);
    const bool left = bin != 0 && bin <= 1;
    EXPECT_DOUBLE_EQ(margins[r], left ? 1.5 : 0.75);
  }
}

// Collects a node's rid sequence (layout-independent).
std::vector<uint32_t> NodeRids(const RowPartitioner& p, int node) {
  std::vector<uint32_t> rids;
  p.ForEachRow(node, [&](uint32_t rid, float, float) { rids.push_back(rid); });
  return rids;
}

// Grows one two-level tree on `p`: root -> {1,2} -> {3,4,5,6}, the second
// level applied as one batch. Returns the leaf ids.
std::vector<int> GrowTwoLevels(RowPartitioner* p, const BinnedMatrix& matrix,
                               const std::vector<GradientPair>& gh,
                               ThreadPool* pool, bool batched) {
  p->Reset(gh, 16, pool);
  p->ApplySplit(0, 1, 2, matrix, 0, 2, false, pool);
  const std::vector<SplitTask> tasks = {
      SplitTask{1, 3, 4, 1, 1, true},
      SplitTask{2, 5, 6, 2, 3, false},
  };
  if (batched) {
    p->ApplySplitBatch(tasks, matrix, pool);
  } else {
    for (const SplitTask& t : tasks) {
      p->ApplySplit(t.node_id, t.left_id, t.right_id, matrix, t.feature,
                    t.split_bin, t.default_left, pool);
    }
  }
  return {3, 4, 5, 6};
}

// Steady state across trees allocates nothing: after the first tree has
// grown every buffer to size, further Reset + split cycles leave the
// grow-event counter unchanged.
TEST(RowPartitioner, SteadyStateAllocatesNothingAcrossTrees) {
  const uint32_t rows = 20000;  // root split takes the parallel path
  const Dataset ds = MakeDataset(rows, 6, 0.8, 101);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16));
  const auto gh = MakeGradients(rows, 102);
  ThreadPool pool(4);

  for (bool membuf : {true, false}) {
    RowPartitioner partitioner(rows, membuf);
    // Warm-up tree: every arena, window table, and scratch buffer grows to
    // its steady-state size (and NodeSum grows its partial buffer).
    GrowTwoLevels(&partitioner, matrix, gh, &pool, true);
    partitioner.NodeSum(0, &pool);
    const int64_t warm = partitioner.stats().grow_events;
    EXPECT_GT(warm, 0);
    for (int tree = 0; tree < 3; ++tree) {
      for (int leaf : GrowTwoLevels(&partitioner, matrix, gh, &pool, true)) {
        partitioner.NodeSum(leaf, &pool);
      }
    }
    EXPECT_EQ(partitioner.stats().grow_events, warm)
        << "membuf=" << membuf << ": steady-state trees must not allocate";
  }
}

// The same guarantee one layer up: HarpTreeBuilder's per-batch staging
// vectors (split tasks, build/subtract/find lists, overlap ring) live in
// reused member scratch, so repeated identical trees leave both the
// partitioner's grow counter and the builder's scratch fingerprint alone.
TEST(RowPartitioner, BuilderSteadyStateAllocatesNothingAcrossTrees) {
  const uint32_t rows = 20000;
  const Dataset ds = MakeDataset(rows, 8, 0.8, 121);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16));
  const auto gh = MakeGradients(rows, 122);
  ThreadPool pool(4);

  for (ParallelMode mode : {ParallelMode::kSYNC, ParallelMode::kMP}) {
    TrainParams p;
    p.grow_policy = GrowPolicy::kTopK;
    p.topk = 8;
    p.tree_size = 6;
    p.min_split_loss = 0.0;
    p.min_child_weight = 0.1;
    p.mode = mode;
    p.use_hist_subtraction = true;
    p.num_threads = 4;
    HarpTreeBuilder builder(matrix, p, pool);
    TrainStats stats;
    builder.BuildTree(gh, &stats);  // warm-up: scratch reaches high water
    const int64_t warm_builder = builder.scratch_grow_events();
    const int64_t warm_partitioner = builder.partitioner().stats().grow_events;
    for (int tree = 0; tree < 3; ++tree) builder.BuildTree(gh, &stats);
    EXPECT_EQ(builder.scratch_grow_events(), warm_builder)
        << ToString(mode) << ": builder scratch must stop growing";
    EXPECT_EQ(builder.partitioner().stats().grow_events, warm_partitioner)
        << ToString(mode) << ": partitioner must stay allocation-free";
  }
}

// The batched path (one count region + one scatter region for all K
// tasks) must produce exactly the trees the per-node path produces:
// same sizes, same stable row order, disjoint cover of all rows.
TEST(RowPartitioner, BatchedApplyMatchesPerNodeApply) {
  const uint32_t rows = 20000;  // total over the batch takes the batch path
  const Dataset ds = MakeDataset(rows, 6, 0.8, 111);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16));
  const auto gh = MakeGradients(rows, 112);
  ThreadPool pool(4);

  for (bool membuf : {true, false}) {
    RowPartitioner batched(rows, membuf);
    RowPartitioner per_node(rows, membuf);
    const auto leaves = GrowTwoLevels(&batched, matrix, gh, &pool, true);
    GrowTwoLevels(&per_node, matrix, gh, nullptr, false);

    std::set<uint32_t> seen;
    uint32_t total = 0;
    for (int leaf : leaves) {
      ASSERT_EQ(batched.NodeSize(leaf), per_node.NodeSize(leaf));
      const auto a = NodeRids(batched, leaf);
      const auto b = NodeRids(per_node, leaf);
      EXPECT_EQ(a, b) << "leaf " << leaf;
      for (uint32_t rid : a) EXPECT_TRUE(seen.insert(rid).second);
      total += batched.NodeSize(leaf);
    }
    EXPECT_EQ(total, rows);
    EXPECT_EQ(seen.size(), rows);
    // Both parents were emptied by their splits.
    EXPECT_EQ(batched.NodeSize(1), 0u);
    EXPECT_EQ(batched.NodeSize(2), 0u);
    // The batch issued one region pair, not one per node.
    EXPECT_GE(batched.stats().batches, 1);
  }
}

// Fused child sums: every split caches both children's sums, NodeSum
// returns the cached value, the value is bit-identical whichever apply
// path produced it (serial, per-node pooled, batched; any thread count),
// and it matches a direct scan of the child to accumulation error.
TEST(RowPartitioner, FusedSumsBitIdenticalAcrossApplyPaths) {
  const uint32_t rows = 20000;
  const Dataset ds = MakeDataset(rows, 6, 0.8, 121);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16));
  const auto gh = MakeGradients(rows, 122);
  ThreadPool pool2(2);
  ThreadPool pool4(4);

  for (bool membuf : {true, false}) {
    RowPartitioner serial(rows, membuf);
    RowPartitioner pooled(rows, membuf);
    RowPartitioner batched(rows, membuf);
    const auto leaves = GrowTwoLevels(&serial, matrix, gh, nullptr, false);
    GrowTwoLevels(&pooled, matrix, gh, &pool2, false);
    GrowTwoLevels(&batched, matrix, gh, &pool4, true);

    for (int leaf : leaves) {
      ASSERT_TRUE(serial.HasFusedSum(leaf));
      ASSERT_TRUE(pooled.HasFusedSum(leaf));
      ASSERT_TRUE(batched.HasFusedSum(leaf));
      const GHPair s = serial.NodeSum(leaf);
      const GHPair p = pooled.NodeSum(leaf);
      const GHPair b = batched.NodeSum(leaf);
      // Bit-identical across paths and thread counts: the fused reduction
      // runs on the parent's fixed chunk grid in ascending order
      // everywhere.
      EXPECT_EQ(s.g, p.g);
      EXPECT_EQ(s.h, p.h);
      EXPECT_EQ(s.g, b.g);
      EXPECT_EQ(s.h, b.h);
      // And it is the child's sum (direct scan association differs, so
      // NEAR, not EQ).
      GHPair direct;
      serial.ForEachRow(leaf, [&](uint32_t, float g, float h) {
        direct.Add(g, h);
      });
      EXPECT_NEAR(s.g, direct.g, 1e-6);
      EXPECT_NEAR(s.h, direct.h, 1e-6);
    }
    // The root was never produced by a split: no fused sum, NodeSum falls
    // back to the scan.
    EXPECT_FALSE(serial.HasFusedSum(0));
  }
}

// The ASYNC contract: workers may serially split *disjoint* nodes
// concurrently (disjoint arena windows in both buffers, thread-local
// scratch). Run the second level on two threads and compare against the
// single-threaded reference.
TEST(RowPartitioner, ConcurrentDisjointSplitsMatchSerial) {
  const uint32_t rows = 20000;
  const Dataset ds = MakeDataset(rows, 6, 0.8, 131);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16));
  const auto gh = MakeGradients(rows, 132);

  for (bool membuf : {true, false}) {
    RowPartitioner concurrent(rows, membuf);
    concurrent.Reset(gh, 16, nullptr);
    concurrent.ApplySplit(0, 1, 2, matrix, 0, 2, false, nullptr);
    const std::vector<SplitTask> tasks = {
        SplitTask{1, 3, 4, 1, 1, true},
        SplitTask{2, 5, 6, 2, 3, false},
    };
    std::vector<std::thread> workers;
    for (const SplitTask& t : tasks) {
      workers.emplace_back([&concurrent, &matrix, t] {
        concurrent.ApplySplit(t.node_id, t.left_id, t.right_id, matrix,
                              t.feature, t.split_bin, t.default_left,
                              nullptr);
      });
    }
    for (auto& w : workers) w.join();

    RowPartitioner reference(rows, membuf);
    GrowTwoLevels(&reference, matrix, gh, nullptr, false);
    for (int leaf : {3, 4, 5, 6}) {
      ASSERT_EQ(concurrent.NodeSize(leaf), reference.NodeSize(leaf));
      EXPECT_EQ(NodeRids(concurrent, leaf), NodeRids(reference, leaf));
      const GHPair a = concurrent.NodeSum(leaf);
      const GHPair b = reference.NodeSum(leaf);
      EXPECT_EQ(a.g, b.g);
      EXPECT_EQ(a.h, b.h);
    }
  }
}

// ApplySplit-phase accounting: the batched path issues one region pair
// (2 barriers) per batch regardless of K, and bytes_moved counts each
// partitioned element exactly once.
TEST(RowPartitioner, PartitionStatsTrackBarriersAndBytes) {
  const uint32_t rows = 20000;
  const Dataset ds = MakeDataset(rows, 6, 0.8, 141);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16));
  const auto gh = MakeGradients(rows, 142);
  ThreadPool pool(4);

  RowPartitioner partitioner(rows, true);
  partitioner.Reset(gh, 16, &pool);
  const PartitionStats before = partitioner.stats();
  partitioner.ApplySplit(0, 1, 2, matrix, 0, 2, false, &pool);
  const std::vector<SplitTask> tasks = {
      SplitTask{1, 3, 4, 1, 1, true},
      SplitTask{2, 5, 6, 2, 3, false},
  };
  partitioner.ApplySplitBatch(tasks, matrix, &pool);
  const PartitionStats after = partitioner.stats();

  EXPECT_EQ(after.splits - before.splits, 3);
  // Root split = one single-task batch, level 2 = one two-task batch: two
  // region pairs total even though three nodes were partitioned.
  EXPECT_EQ(after.batches - before.batches, 2);
  EXPECT_EQ(after.barriers - before.barriers, 4);
  // Every row moved once per level: 2 levels x rows elements.
  EXPECT_EQ(after.bytes_moved - before.bytes_moved,
            static_cast<int64_t>(2 * rows * sizeof(MemBufEntry)));
}

TEST(RowPartitionerDeath, OutOfRangeNode) {
  const auto gh = MakeGradients(10, 1);
  RowPartitioner partitioner(10, true);
  partitioner.Reset(gh, 4, nullptr);
  EXPECT_DEATH(partitioner.NodeSize(4), "CHECK");
  EXPECT_DEATH(partitioner.NodeSize(-1), "CHECK");
}

}  // namespace
}  // namespace harp
