// Tests for RowPartitioner: NodeMap semantics, MemBuf layout, stable
// parallel partition, margin scatter.
#include <gtest/gtest.h>

#include <set>

#include "core/row_partitioner.h"
#include "parallel/thread_pool.h"
#include "test_util.h"

namespace harp {
namespace {

using harp::testing::MakeDataset;
using harp::testing::MakeGradients;

struct PartitionCase {
  bool membuf;
  int threads;
  bool parallel_split;  // big node -> internally parallel partition
};

class PartitionerSweep : public ::testing::TestWithParam<PartitionCase> {};

TEST_P(PartitionerSweep, ApplySplitInvariants) {
  const PartitionCase& c = GetParam();
  // >= 8192 rows triggers the parallel partition path.
  const uint32_t rows = c.parallel_split ? 12000 : 900;
  const Dataset ds = MakeDataset(rows, 6, 0.8, 51);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16));
  const auto gh = MakeGradients(rows, 52);

  ThreadPool pool(c.threads);
  RowPartitioner partitioner(rows, c.membuf);
  partitioner.Reset(gh, 8, &pool);
  EXPECT_EQ(partitioner.NodeSize(0), rows);

  const uint32_t feature = 1;
  const uint32_t split_bin = std::max(1u, (matrix.NumBins(feature) - 1) / 2);
  const bool default_left = true;
  partitioner.ApplySplit(0, 1, 2, matrix, feature, split_bin, default_left,
                         &pool);

  // Invariant 1: sizes add up, parent freed.
  EXPECT_EQ(partitioner.NodeSize(1) + partitioner.NodeSize(2), rows);
  EXPECT_EQ(partitioner.NodeSize(0), 0u);

  // Invariant 2: children are a disjoint cover of all rows and respect the
  // split predicate; order within each child preserves the parent order
  // (stability) — parent order was ascending row ids.
  std::set<uint32_t> seen;
  uint32_t prev_left = 0;
  bool first_left = true;
  partitioner.ForEachRowRange(1, 0, partitioner.NodeSize(1),
                              [&](uint32_t rid, float g, float h) {
                                EXPECT_TRUE(seen.insert(rid).second);
                                const uint8_t bin = matrix.Bin(rid, feature);
                                EXPECT_TRUE(bin == 0 ? default_left
                                                     : bin <= split_bin);
                                EXPECT_FLOAT_EQ(g, gh[rid].g);
                                EXPECT_FLOAT_EQ(h, gh[rid].h);
                                if (!first_left) {
                                  EXPECT_GT(rid, prev_left);
                                }
                                prev_left = rid;
                                first_left = false;
                              });
  uint32_t prev_right = 0;
  bool first_right = true;
  partitioner.ForEachRowRange(2, 0, partitioner.NodeSize(2),
                              [&](uint32_t rid, float, float) {
                                EXPECT_TRUE(seen.insert(rid).second);
                                const uint8_t bin = matrix.Bin(rid, feature);
                                EXPECT_TRUE(bin == 0 ? !default_left
                                                     : bin > split_bin);
                                if (!first_right) {
                                  EXPECT_GT(rid, prev_right);
                                }
                                prev_right = rid;
                                first_right = false;
                              });
  EXPECT_EQ(seen.size(), rows);
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, PartitionerSweep,
    ::testing::Values(PartitionCase{true, 1, false},
                      PartitionCase{true, 4, false},
                      PartitionCase{false, 4, false},
                      PartitionCase{true, 4, true},
                      PartitionCase{false, 3, true},
                      PartitionCase{false, 1, true}));

TEST(RowPartitioner, NodeSumMatchesDirectSum) {
  const uint32_t rows = 6000;
  const auto gh = MakeGradients(rows, 61);
  ThreadPool pool(4);
  for (bool membuf : {true, false}) {
    RowPartitioner partitioner(rows, membuf);
    partitioner.Reset(gh, 4, &pool);
    GHPair expected;
    for (const auto& g : gh) expected.Add(g.g, g.h);
    const GHPair serial = partitioner.NodeSum(0, nullptr);
    const GHPair parallel = partitioner.NodeSum(0, &pool);
    EXPECT_NEAR(serial.g, expected.g, 1e-6);
    EXPECT_NEAR(parallel.g, expected.g, 1e-6);
    EXPECT_NEAR(parallel.h, expected.h, 1e-6);
  }
}

TEST(RowPartitioner, SerialAndParallelPartitionIdentical) {
  const uint32_t rows = 20000;  // above the parallel threshold
  const Dataset ds = MakeDataset(rows, 4, 0.9, 71);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16));
  const auto gh = MakeGradients(rows, 72);

  ThreadPool pool(4);
  RowPartitioner parallel(rows, true);
  parallel.Reset(gh, 4, &pool);
  parallel.ApplySplit(0, 1, 2, matrix, 0, 2, false, &pool);

  RowPartitioner serial(rows, true);
  serial.Reset(gh, 4, nullptr);
  serial.ApplySplit(0, 1, 2, matrix, 0, 2, false, nullptr);

  for (int node : {1, 2}) {
    ASSERT_EQ(parallel.NodeSize(node), serial.NodeSize(node));
    const auto a = parallel.NodeEntries(node);
    const auto b = serial.NodeEntries(node);
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].rid, b[i].rid) << "node " << node << " pos " << i;
    }
  }
}

TEST(RowPartitioner, MembufAndGatherSeeSameRows) {
  const uint32_t rows = 1500;
  const Dataset ds = MakeDataset(rows, 5, 0.85, 81);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16));
  const auto gh = MakeGradients(rows, 82);

  RowPartitioner with(rows, true);
  RowPartitioner without(rows, false);
  with.Reset(gh, 8, nullptr);
  without.Reset(gh, 8, nullptr);
  with.ApplySplit(0, 1, 2, matrix, 3, 1, true, nullptr);
  without.ApplySplit(0, 1, 2, matrix, 3, 1, true, nullptr);

  for (int node : {1, 2}) {
    std::vector<uint32_t> a;
    std::vector<uint32_t> b;
    std::vector<float> ga;
    std::vector<float> gb;
    with.ForEachRowRange(node, 0, with.NodeSize(node),
                         [&](uint32_t rid, float g, float) {
                           a.push_back(rid);
                           ga.push_back(g);
                         });
    without.ForEachRowRange(node, 0, without.NodeSize(node),
                            [&](uint32_t rid, float g, float) {
                              b.push_back(rid);
                              gb.push_back(g);
                            });
    EXPECT_EQ(a, b);
    EXPECT_EQ(ga, gb);
  }
}

TEST(RowPartitioner, MultiLevelSplitsKeepDisjointCover) {
  const uint32_t rows = 3000;
  const Dataset ds = MakeDataset(rows, 6, 0.8, 91);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16));
  const auto gh = MakeGradients(rows, 92);
  RowPartitioner partitioner(rows, true);
  partitioner.Reset(gh, 16, nullptr);
  partitioner.ApplySplit(0, 1, 2, matrix, 0, 2, false, nullptr);
  partitioner.ApplySplit(1, 3, 4, matrix, 1, 1, true, nullptr);
  partitioner.ApplySplit(2, 5, 6, matrix, 2, 3, false, nullptr);

  std::set<uint32_t> seen;
  uint32_t total = 0;
  for (int leaf : {3, 4, 5, 6}) {
    total += partitioner.NodeSize(leaf);
    partitioner.ForEachRowRange(leaf, 0, partitioner.NodeSize(leaf),
                                [&](uint32_t rid, float, float) {
                                  EXPECT_TRUE(seen.insert(rid).second);
                                });
  }
  EXPECT_EQ(total, rows);
  EXPECT_EQ(seen.size(), rows);
}

TEST(RowPartitioner, AddToMargins) {
  const uint32_t rows = 100;
  const Dataset ds = MakeDataset(rows, 3, 1.0, 95);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 8));
  const auto gh = MakeGradients(rows, 96);
  RowPartitioner partitioner(rows, true);
  partitioner.Reset(gh, 4, nullptr);
  partitioner.ApplySplit(0, 1, 2, matrix, 0, 1, false, nullptr);

  std::vector<double> margins(rows, 1.0);
  partitioner.AddToMargins(1, 0.5, &margins);
  partitioner.AddToMargins(2, -0.25, &margins);
  for (uint32_t r = 0; r < rows; ++r) {
    const uint8_t bin = matrix.Bin(r, 0);
    const bool left = bin != 0 && bin <= 1;
    EXPECT_DOUBLE_EQ(margins[r], left ? 1.5 : 0.75);
  }
}

TEST(RowPartitionerDeath, OutOfRangeNode) {
  const auto gh = MakeGradients(10, 1);
  RowPartitioner partitioner(10, true);
  partitioner.Reset(gh, 4, nullptr);
  EXPECT_DEATH(partitioner.NodeSize(4), "CHECK");
  EXPECT_DEATH(partitioner.NodeSize(-1), "CHECK");
}

}  // namespace
}  // namespace harp
