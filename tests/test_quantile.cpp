// Unit tests for quantile cut computation and bin mapping.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "data/dataset.h"
#include "data/quantile.h"
#include "parallel/thread_pool.h"

namespace harp {
namespace {

Dataset OneFeature(std::vector<float> values) {
  const uint32_t rows = static_cast<uint32_t>(values.size());
  std::vector<float> labels(rows, 0.0f);
  return Dataset::FromDense(rows, 1, std::move(values), std::move(labels));
}

TEST(Quantile, FewDistinctValuesGetOneBinEach) {
  const Dataset ds = OneFeature({3.0f, 1.0f, 2.0f, 1.0f, 3.0f, 2.0f});
  const QuantileCuts cuts = QuantileCuts::Compute(ds, 256);
  EXPECT_EQ(cuts.NumCuts(0), 3u);
  // Each distinct value lands in its own bin, in value order.
  EXPECT_EQ(cuts.BinFor(0, 1.0f), 1u);
  EXPECT_EQ(cuts.BinFor(0, 2.0f), 2u);
  EXPECT_EQ(cuts.BinFor(0, 3.0f), 3u);
}

TEST(Quantile, MissingMapsToBinZero) {
  const Dataset ds = OneFeature({1.0f, 2.0f});
  const QuantileCuts cuts = QuantileCuts::Compute(ds, 256);
  EXPECT_EQ(cuts.BinFor(0, kMissingValue), 0u);
}

TEST(Quantile, CutsAreUpperBoundsInclusive) {
  const Dataset ds = OneFeature({1.0f, 2.0f, 3.0f});
  const QuantileCuts cuts = QuantileCuts::Compute(ds, 256);
  // A value exactly equal to a cut goes into that cut's bin.
  const float cut1 = cuts.CutFor(0, 1);
  EXPECT_EQ(cuts.BinFor(0, cut1), 1u);
  // Values just above the cut fall into the next bin.
  EXPECT_EQ(cuts.BinFor(0, std::nextafter(cut1, 10.0f)), 2u);
}

TEST(Quantile, ValuesAboveMaxClampToLastBin) {
  const Dataset ds = OneFeature({1.0f, 2.0f, 3.0f});
  const QuantileCuts cuts = QuantileCuts::Compute(ds, 256);
  EXPECT_EQ(cuts.BinFor(0, 100.0f), cuts.NumCuts(0));
  EXPECT_EQ(cuts.BinFor(0, -100.0f), 1u);  // below min -> first bin
}

TEST(Quantile, CutsStrictlyIncreasing) {
  Rng rng(5);
  std::vector<float> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(static_cast<float>(rng.Normal() * 10.0));
  }
  const Dataset ds = OneFeature(std::move(values));
  const QuantileCuts cuts = QuantileCuts::Compute(ds, 64);
  EXPECT_LE(cuts.NumCuts(0), 63u);
  EXPECT_GE(cuts.NumCuts(0), 32u);  // plenty of distinct values available
  for (uint32_t b = 2; b <= cuts.NumCuts(0); ++b) {
    EXPECT_LT(cuts.CutFor(0, b - 1), cuts.CutFor(0, b));
  }
}

TEST(Quantile, EveryValueMapsWithinItsCutBounds) {
  Rng rng(9);
  std::vector<float> values;
  for (int i = 0; i < 2000; ++i) {
    values.push_back(static_cast<float>(rng.Uniform(-5.0, 5.0)));
  }
  const Dataset ds = OneFeature(values);
  const QuantileCuts cuts = QuantileCuts::Compute(ds, 32);
  for (float v : values) {
    const uint32_t bin = cuts.BinFor(0, v);
    ASSERT_GE(bin, 1u);
    ASSERT_LE(bin, cuts.NumCuts(0));
    EXPECT_LE(v, cuts.CutFor(0, bin));  // inside upper bound
    if (bin > 1) {
      EXPECT_GT(v, cuts.CutFor(0, bin - 1));  // above lower bound
    }
  }
}

TEST(Quantile, QuantilePathRoughlyBalancesDistinctValues) {
  // 1000 distinct uniform values into at most 10 bins: each bin should
  // cover roughly 100 distinct values.
  std::vector<float> values;
  for (int i = 0; i < 1000; ++i) values.push_back(static_cast<float>(i));
  const Dataset ds = OneFeature(values);
  const QuantileCuts cuts = QuantileCuts::Compute(ds, 11);
  ASSERT_LE(cuts.NumCuts(0), 10u);
  std::vector<int> counts(cuts.NumCuts(0) + 1, 0);
  for (float v : values) ++counts[cuts.BinFor(0, v)];
  for (uint32_t b = 1; b <= cuts.NumCuts(0); ++b) {
    EXPECT_GT(counts[b], 50);
    EXPECT_LT(counts[b], 200);
  }
}

TEST(Quantile, FeatureNeverPresentHasNoCuts) {
  // Feature 1 is always missing.
  const Dataset ds = Dataset::FromDense(
      2, 2, {1.0f, kMissingValue, 2.0f, kMissingValue}, {0.0f, 1.0f});
  const QuantileCuts cuts = QuantileCuts::Compute(ds, 256);
  EXPECT_EQ(cuts.NumCuts(1), 0u);
  EXPECT_EQ(cuts.NumBins(1), 1u);
  EXPECT_EQ(cuts.BinFor(1, 5.0f), 0u);  // any value maps to the missing bin
}

TEST(Quantile, ParallelMatchesSerial) {
  Rng rng(21);
  const uint32_t rows = 3000;
  const uint32_t features = 17;
  std::vector<float> values(static_cast<size_t>(rows) * features);
  for (auto& v : values) {
    v = rng.Bernoulli(0.1)
            ? kMissingValue
            : static_cast<float>(rng.Normal() * (1.0 + rng.NextDouble()));
  }
  const Dataset ds = Dataset::FromDense(rows, features, std::move(values),
                                        std::vector<float>(rows, 0.0f));
  const QuantileCuts serial = QuantileCuts::Compute(ds, 64, nullptr);
  ThreadPool pool(4);
  const QuantileCuts parallel = QuantileCuts::Compute(ds, 64, &pool);
  EXPECT_EQ(serial.cuts(), parallel.cuts());
  EXPECT_EQ(serial.cut_ptr(), parallel.cut_ptr());
}

TEST(Quantile, RespectsMaxBins) {
  Rng rng(33);
  std::vector<float> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(static_cast<float>(rng.NextDouble()));
  }
  const Dataset ds = OneFeature(std::move(values));
  for (int max_bins : {2, 4, 16, 256}) {
    const QuantileCuts cuts = QuantileCuts::Compute(ds, max_bins);
    EXPECT_LE(cuts.NumCuts(0), static_cast<uint32_t>(max_bins - 1));
    EXPECT_GE(cuts.NumCuts(0), 1u);
  }
}

TEST(Quantile, FromRawRoundtrip) {
  const Dataset ds = OneFeature({1.0f, 2.0f, 3.0f});
  const QuantileCuts cuts = QuantileCuts::Compute(ds, 256);
  const QuantileCuts copy = QuantileCuts::FromRaw(
      cuts.cuts(), cuts.cut_ptr(), cuts.max_bins());
  EXPECT_EQ(copy.BinFor(0, 2.5f), cuts.BinFor(0, 2.5f));
  EXPECT_EQ(copy.NumCuts(0), cuts.NumCuts(0));
}

}  // namespace
}  // namespace harp
