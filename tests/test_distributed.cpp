// Tests for the simulated cluster communicator and distributed training.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "core/metrics.h"
#include "core/model_io.h"
#include "data/synthetic.h"
#include "distributed/dist_gbdt.h"
#include "distributed/inprocess_transport.h"
#include "distributed/socket_transport.h"
#include "distributed/sparse_hist.h"
#include "test_util.h"

namespace harp {
namespace {

// ---------- Communicator ----------

class ClusterSizes : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Worlds, ClusterSizes, ::testing::Values(1, 2, 3, 5));

TEST_P(ClusterSizes, AllreduceSumsAcrossRanks) {
  const int world = GetParam();
  SimulatedCluster cluster(world);
  cluster.Run([&](Communicator& comm) {
    std::vector<double> data(16);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<double>(comm.rank() + 1) * (i + 1);
    }
    comm.AllreduceSum(data.data(), data.size());
    // Sum over ranks r of (r+1)*(i+1) = (i+1) * world(world+1)/2.
    const double factor = world * (world + 1) / 2.0;
    for (size_t i = 0; i < data.size(); ++i) {
      EXPECT_DOUBLE_EQ(data[i], factor * (i + 1))
          << "rank " << comm.rank() << " slot " << i;
    }
  });
}

TEST_P(ClusterSizes, RepeatedCollectivesStayInSync) {
  const int world = GetParam();
  SimulatedCluster cluster(world);
  cluster.Run([&](Communicator& comm) {
    int64_t value = 1;
    for (int round = 0; round < 200; ++round) {
      int64_t local = value;
      comm.AllreduceSum(&local, 1);
      EXPECT_EQ(local, value * world) << "round " << round;
    }
  });
}

TEST(Communicator, AllreduceGhPairs) {
  SimulatedCluster cluster(3);
  cluster.Run([&](Communicator& comm) {
    GHPair data{static_cast<double>(comm.rank()), 1.0};
    comm.AllreduceSum(&data, 1);
    EXPECT_DOUBLE_EQ(data.g, 0.0 + 1.0 + 2.0);
    EXPECT_DOUBLE_EQ(data.h, 3.0);
  });
}

TEST(Communicator, BroadcastFromEachRoot) {
  for (int root = 0; root < 3; ++root) {
    SimulatedCluster cluster(3);
    cluster.Run([&](Communicator& comm) {
      int payload[4] = {0, 0, 0, 0};
      if (comm.rank() == root) {
        for (int i = 0; i < 4; ++i) payload[i] = 100 * root + i;
      }
      comm.Broadcast(payload, sizeof(payload), root);
      for (int i = 0; i < 4; ++i) EXPECT_EQ(payload[i], 100 * root + i);
    });
  }
}

TEST(Communicator, BarrierOrdersPhases) {
  SimulatedCluster cluster(4);
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  cluster.Run([&](Communicator& comm) {
    phase1.fetch_add(1);
    comm.Barrier();
    if (phase1.load() != 4) violated.store(true);
  });
  EXPECT_FALSE(violated.load());
}

TEST(Communicator, CountsTraffic) {
  SimulatedCluster cluster(2);
  cluster.Run([&](Communicator& comm) {
    double v = 1.0;
    comm.AllreduceSum(&v, 1);
    comm.Barrier();
  });
  const CommStats stats = cluster.TotalStats();
  EXPECT_EQ(stats.allreduce_calls, 2);
  EXPECT_EQ(stats.allreduce_bytes, 2 * 8);  // 8 bytes x (world-1) x ranks
  EXPECT_EQ(stats.barriers, 2);
}

TEST(Communicator, AllreduceMaxAcrossRanks) {
  SimulatedCluster cluster(3);
  cluster.Run([&](Communicator& comm) {
    double data[3] = {static_cast<double>(comm.rank()),
                      -static_cast<double>(comm.rank()) - 1.0, 0.5};
    comm.AllreduceMax(data, 3);
    EXPECT_DOUBLE_EQ(data[0], 2.0);
    EXPECT_DOUBLE_EQ(data[1], -1.0);
    EXPECT_DOUBLE_EQ(data[2], 0.5);
  });
}

TEST(Communicator, CountsBroadcastBytes) {
  SimulatedCluster cluster(3);
  cluster.Run([&](Communicator& comm) {
    char payload[12] = {};
    if (comm.rank() == 1) std::memset(payload, 7, sizeof(payload));
    comm.Broadcast(payload, sizeof(payload), 1);
    EXPECT_EQ(payload[11], 7);
    EXPECT_EQ(comm.stats().broadcast_calls, 1);
    EXPECT_EQ(comm.stats().broadcast_bytes, 12 * 2);  // bytes x (world-1)
  });
  EXPECT_EQ(cluster.TotalStats().broadcast_calls, 3);
  EXPECT_EQ(cluster.TotalStats().broadcast_bytes, 3 * 12 * 2);
}

// The chunked parallel dense reduce must be bitwise identical to the
// serial rank-ordered reduction (chunking only changes WHO adds, never
// the per-element addition order).
TEST(InProcessTransport, ChunkedAllreduceMatchesSerialRankOrder) {
  const int world = 3;
  const size_t count = 2 * InProcessCluster::kChunkElems + 1234;

  // Deterministic per-rank data with awkward magnitudes so float addition
  // order matters.
  const auto value = [](int rank, size_t i) {
    uint64_t x = 0x9E3779B97F4A7C15ull * (i + 1) + rank * 0x10001ull;
    x ^= x >> 33;
    const double mag = static_cast<double>(x % 100003) / 997.0;
    return (x & 1) ? mag : -mag * 1e-7;
  };
  std::vector<double> expect(count);
  for (size_t i = 0; i < count; ++i) {
    double acc = value(0, i);
    for (int r = 1; r < world; ++r) acc += value(r, i);
    expect[i] = acc;
  }

  InProcessCluster cluster(world);
  std::vector<std::vector<double>> data(world, std::vector<double>(count));
  std::vector<std::thread> threads;
  for (int rank = 0; rank < world; ++rank) {
    threads.emplace_back([&, rank] {
      auto& mine = data[static_cast<size_t>(rank)];
      for (size_t i = 0; i < count; ++i) mine[i] = value(rank, i);
      cluster.transport(rank).AllreduceSum(mine.data(), count);
    });
  }
  for (auto& t : threads) t.join();
  for (int rank = 0; rank < world; ++rank) {
    ASSERT_EQ(0, std::memcmp(data[static_cast<size_t>(rank)].data(),
                             expect.data(), count * sizeof(double)))
        << "rank " << rank;
  }
}

TEST(Communicator, WorkerExceptionPropagates) {
  SimulatedCluster cluster(2);
  EXPECT_THROW(cluster.Run([&](Communicator& comm) {
    if (comm.rank() == 1) throw std::runtime_error("worker died");
    // Rank 0 must not deadlock waiting for rank 1 — it does no
    // collectives here.
  }),
               std::runtime_error);
}

// ---------- SparseHistogram codec ----------

// Exact quantization scales for codec tests: values are multiples of the
// inverse scale, so encode/decode round-trips bit for bit.
SparseHistFormat QuantFormat() {
  SparseHistFormat fmt;
  fmt.quant = true;
  fmt.scales.g_exp = 8;
  fmt.scales.g_scale = 256.0f;
  fmt.scales.g_inv = 1.0 / 256.0;
  fmt.scales.h_exp = 10;
  fmt.scales.h_scale = 1024.0f;
  fmt.scales.h_inv = 1.0 / 1024.0;
  return fmt;
}

// Per-rank test histograms: scattered touched cells (different cells per
// rank, some overlapping), values exactly representable at the quant
// scales so f64 and quant paths must both be exact.
std::vector<std::vector<GHPair>> RankHists(int world, uint32_t num_hists,
                                           uint32_t cells) {
  std::vector<std::vector<GHPair>> hists(static_cast<size_t>(world));
  const SparseHistFormat fmt = QuantFormat();
  for (int r = 0; r < world; ++r) {
    auto& h = hists[static_cast<size_t>(r)];
    h.assign(static_cast<size_t>(num_hists) * cells, GHPair{});
    for (size_t i = 0; i < h.size(); ++i) {
      if ((i * 7 + static_cast<size_t>(r) * 3) % 5 == 0) {
        const double k = static_cast<double>((i % 97) + 1);
        h[i].g = (r % 2 == 0 ? k : -k) * fmt.scales.g_inv;
        h[i].h = k * fmt.scales.h_inv;
      }
    }
  }
  return hists;
}

// Reference: the dense rank-ordered reduction (rank 0's cell, then += each
// higher rank in order) — what the dense oracle path computes.
std::vector<GHPair> DenseRankOrderedSum(
    const std::vector<std::vector<GHPair>>& hists) {
  std::vector<GHPair> acc = hists[0];
  for (size_t r = 1; r < hists.size(); ++r) {
    for (size_t i = 0; i < acc.size(); ++i) {
      acc[i].g += hists[r][i].g;
      acc[i].h += hists[r][i].h;
    }
  }
  return acc;
}

class SparseHistCodec : public ::testing::TestWithParam<bool> {};

INSTANTIATE_TEST_SUITE_P(Formats, SparseHistCodec,
                         ::testing::Values(false, true));

TEST_P(SparseHistCodec, EncodeReduceDecodeMatchesDenseRankOrderBitwise) {
  const bool quant = GetParam();
  const int world = 3;
  const uint32_t num_hists = 2;
  const uint32_t cells = 37;  // partial last region
  SparseHistFormat fmt = QuantFormat();
  fmt.quant = quant;

  const auto hists = RankHists(world, num_hists, cells);
  const std::vector<GHPair> expect = DenseRankOrderedSum(hists);

  std::vector<std::vector<uint8_t>> frames(world);
  Transport::Frames views;
  for (int r = 0; r < world; ++r) {
    const GHPair* ptrs[2] = {hists[static_cast<size_t>(r)].data(),
                             hists[static_cast<size_t>(r)].data() + cells};
    EncodeSparseHist(ptrs, num_hists, cells, fmt,
                     &frames[static_cast<size_t>(r)]);
    views.emplace_back(frames[static_cast<size_t>(r)].data(),
                       frames[static_cast<size_t>(r)].size());
  }
  std::vector<uint8_t> reduced;
  ReduceSparseHist(views, num_hists, cells, fmt, &reduced);
  // Compression: the frame must beat the dense payload on this data.
  EXPECT_LT(reduced.size(),
            static_cast<size_t>(DenseHistBytes(num_hists, cells)));

  std::vector<GHPair> decoded(static_cast<size_t>(num_hists) * cells,
                              GHPair{1.0, 1.0});  // must be overwritten
  GHPair* out_ptrs[2] = {decoded.data(), decoded.data() + cells};
  DecodeSparseHist(reduced.data(), reduced.size(), out_ptrs, num_hists, cells,
                   fmt);
  ASSERT_EQ(0, std::memcmp(decoded.data(), expect.data(),
                           decoded.size() * sizeof(GHPair)));
}

TEST_P(SparseHistCodec, AllZeroHistogramsShipHeaderOnlyFrames) {
  const bool quant = GetParam();
  const uint32_t cells = 24;
  SparseHistFormat fmt = QuantFormat();
  fmt.quant = quant;
  const std::vector<GHPair> zero(cells, GHPair{});
  const GHPair* ptrs[1] = {zero.data()};
  std::vector<uint8_t> frame;
  EncodeSparseHist(ptrs, 1, cells, fmt, &frame);
  EXPECT_EQ(frame.size(), sizeof(SparseHistHeader));

  // Reducing three empty frames yields an empty frame; decoding it zeroes
  // the output.
  Transport::Frames views(
      3, std::make_pair(static_cast<const uint8_t*>(frame.data()),
                        frame.size()));
  std::vector<uint8_t> reduced;
  ReduceSparseHist(views, 1, cells, fmt, &reduced);
  EXPECT_EQ(reduced.size(), sizeof(SparseHistHeader));
  std::vector<GHPair> decoded(cells, GHPair{3.0, 3.0});
  GHPair* out_ptrs[1] = {decoded.data()};
  DecodeSparseHist(reduced.data(), reduced.size(), out_ptrs, 1, cells, fmt);
  for (const GHPair& cell : decoded) {
    EXPECT_EQ(cell.g, 0.0);
    EXPECT_EQ(cell.h, 0.0);
  }
}

TEST(SparseHistCodecEdge, NegativeZeroCountsAsTouched) {
  // -0.0 has nonzero bits; skipping it would flip the sign the dense
  // oracle preserves.
  SparseHistFormat fmt;  // f64
  std::vector<GHPair> hist(8, GHPair{});
  hist[3].g = -0.0;
  const GHPair* ptrs[1] = {hist.data()};
  std::vector<uint8_t> frame;
  EncodeSparseHist(ptrs, 1, 8, fmt, &frame);
  EXPECT_GT(frame.size(), sizeof(SparseHistHeader));
  std::vector<GHPair> decoded(8, GHPair{1.0, 1.0});
  GHPair* out_ptrs[1] = {decoded.data()};
  DecodeSparseHist(frame.data(), frame.size(), out_ptrs, 1, 8, fmt);
  EXPECT_TRUE(std::signbit(decoded[3].g));
}

TEST(SparseHistCodecEdge, MalformedFramesRejected) {
  SparseHistFormat fmt;
  const auto hists = RankHists(1, 1, 16);
  const GHPair* ptrs[1] = {hists[0].data()};
  std::vector<uint8_t> frame;
  EncodeSparseHist(ptrs, 1, 16, fmt, &frame);
  std::vector<GHPair> out(16);
  GHPair* out_ptrs[1] = {out.data()};
  const auto decode = [&](const std::vector<uint8_t>& f) {
    DecodeSparseHist(f.data(), f.size(), out_ptrs, 1, 16, fmt);
  };
  ASSERT_NO_THROW(decode(frame));

  {
    std::vector<uint8_t> f = frame;  // short header
    f.resize(sizeof(SparseHistHeader) - 1);
    EXPECT_THROW(decode(f), std::runtime_error);
  }
  {
    std::vector<uint8_t> f = frame;  // truncated payload
    f.resize(f.size() - 1);
    EXPECT_THROW(decode(f), std::runtime_error);
  }
  {
    std::vector<uint8_t> f = frame;  // bad magic
    f[0] ^= 0xFF;
    EXPECT_THROW(decode(f), std::runtime_error);
  }
  {
    std::vector<uint8_t> f = frame;  // bad version
    f[4] ^= 0xFF;
    EXPECT_THROW(decode(f), std::runtime_error);
  }
  {
    std::vector<uint8_t> f = frame;  // unknown flags
    f[6] |= 0x80;
    EXPECT_THROW(decode(f), std::runtime_error);
  }
  {
    std::vector<uint8_t> f = frame;  // geometry mismatch
    SparseHistHeader h;
    std::memcpy(&h, f.data(), sizeof(h));
    h.cells_per_hist = 99;
    std::memcpy(f.data(), &h, sizeof(h));
    EXPECT_THROW(decode(f), std::runtime_error);
  }
  {
    std::vector<uint8_t> f = frame;  // absurd run count
    SparseHistHeader h;
    std::memcpy(&h, f.data(), sizeof(h));
    h.num_runs = 1u << 30;
    std::memcpy(f.data(), &h, sizeof(h));
    EXPECT_THROW(decode(f), std::runtime_error);
  }
  {
    std::vector<uint8_t> f = frame;  // zeroed region bitmap
    SparseHistHeader h;
    std::memcpy(&h, f.data(), sizeof(h));
    ASSERT_GT(h.num_runs, 0u);
    f[sizeof(h) + h.num_runs * sizeof(SparseHistRun)] = 0;
    EXPECT_THROW(decode(f), std::runtime_error);
  }
  {
    std::vector<uint8_t> f = frame;  // format mismatch (quant flag)
    SparseHistFormat qfmt = QuantFormat();
    std::vector<GHPair> q(16);
    GHPair* qptrs[1] = {q.data()};
    EXPECT_THROW(
        DecodeSparseHist(f.data(), f.size(), qptrs, 1, 16, qfmt),
        std::runtime_error);
  }
}

// ---------- DistributedGbdt ----------

Dataset TrainData(uint32_t rows = 4000) {
  SyntheticSpec spec;
  spec.rows = rows;
  spec.features = 10;
  spec.density = 0.9;
  spec.margin_scale = 3.0;
  spec.seed = 1101;
  return GenerateSynthetic(spec);
}

TrainParams DistParams(int trees = 5) {
  TrainParams p;
  p.num_trees = trees;
  p.tree_size = 4;
  p.grow_policy = GrowPolicy::kTopK;
  p.topk = 8;
  return p;
}

TEST(DistributedGbdt, SingleWorkerLearns) {
  const Dataset data = TrainData();
  const DistributedResult result =
      DistributedGbdt::Train(data, 1, DistParams(10));
  EXPECT_GT(Auc(data.labels(), result.model.Predict(data)), 0.85);
}

TEST(DistributedGbdt, WorkerCountDoesNotChangeTheModel) {
  const Dataset data = TrainData();
  const DistributedResult one = DistributedGbdt::Train(data, 1, DistParams());
  for (int workers : {2, 4}) {
    const DistributedResult many =
        DistributedGbdt::Train(data, workers, DistParams());
    ASSERT_EQ(one.model.NumTrees(), many.model.NumTrees());
    for (size_t t = 0; t < one.model.NumTrees(); ++t) {
      // Identical structure and splits. Leaf values may differ at the
      // last float bit from summation order; compare structure + predict.
      const RegTree& a = one.model.tree(t);
      const RegTree& b = many.model.tree(t);
      ASSERT_EQ(a.num_nodes(), b.num_nodes()) << "workers " << workers;
      for (int i = 0; i < a.num_nodes(); ++i) {
        EXPECT_EQ(a.node(i).IsLeaf(), b.node(i).IsLeaf());
        if (!a.node(i).IsLeaf()) {
          EXPECT_EQ(a.node(i).split_feature, b.node(i).split_feature);
          EXPECT_EQ(a.node(i).split_bin, b.node(i).split_bin);
          EXPECT_EQ(a.node(i).default_left, b.node(i).default_left);
        } else {
          EXPECT_NEAR(a.node(i).leaf_value, b.node(i).leaf_value, 1e-9);
        }
        EXPECT_EQ(a.node(i).num_rows, b.node(i).num_rows);
      }
    }
  }
}

TEST(DistributedGbdt, MatchesSingleNodeTrainerStructure) {
  // The distributed histogram-aggregation must reproduce the single-node
  // HarpGBDT trees (same algorithm, different plumbing).
  const Dataset data = TrainData(2500);
  TrainParams p = DistParams(3);
  const DistributedResult dist = DistributedGbdt::Train(data, 3, p);

  p.mode = ParallelMode::kDP;
  p.num_threads = 1;
  GbdtTrainer trainer(p);
  const GbdtModel local = trainer.Train(data);
  ASSERT_EQ(local.NumTrees(), dist.model.NumTrees());
  for (size_t t = 0; t < local.NumTrees(); ++t) {
    const RegTree& a = local.tree(t);
    const RegTree& b = dist.model.tree(t);
    ASSERT_EQ(a.num_nodes(), b.num_nodes()) << "tree " << t;
    for (int i = 0; i < a.num_nodes(); ++i) {
      if (!a.node(i).IsLeaf()) {
        EXPECT_EQ(a.node(i).split_feature, b.node(i).split_feature);
        EXPECT_EQ(a.node(i).split_bin, b.node(i).split_bin);
      } else {
        EXPECT_NEAR(a.node(i).leaf_value, b.node(i).leaf_value, 1e-9);
      }
    }
  }
}

TEST(DistributedGbdt, CommunicationVolumeScalesWithWorkers) {
  const Dataset data = TrainData(2000);
  const DistributedResult two = DistributedGbdt::Train(data, 2, DistParams(2));
  const DistributedResult four =
      DistributedGbdt::Train(data, 4, DistParams(2));
  EXPECT_GT(two.comm.allreduce_calls, 0);
  // Per-rank calls are equal; total calls and bytes grow with world size.
  EXPECT_GT(four.comm.allreduce_calls, two.comm.allreduce_calls);
  EXPECT_GT(four.comm.allreduce_bytes, two.comm.allreduce_bytes);
}

TEST(DistributedGbdt, UnevenShardsHandled) {
  const Dataset data = TrainData(1003);  // does not divide evenly
  const DistributedResult result =
      DistributedGbdt::Train(data, 4, DistParams(3));
  EXPECT_EQ(result.model.NumTrees(), 3u);
  for (const RegTree& tree : result.model.trees()) {
    EXPECT_TRUE(tree.CheckValid());
    EXPECT_EQ(tree.node(0).num_rows, data.num_rows());
  }
}

TEST(DistributedGbdtDeath, MoreWorkersThanRows) {
  const Dataset data = TrainData(4);
  EXPECT_DEATH(DistributedGbdt::Train(data, 8, DistParams(1)), "CHECK");
}

// The acceptance gate of the compressed exchange: at every worker count,
// with and without histogram quantization, on sparse and dense data, the
// sparse wire format must reproduce the dense f64 oracle's model bit for
// bit (SerializeModel emits hex floats, so string equality is bit
// equality).
TEST(DistributedGbdt, SparseExchangeModelMatchesDenseOracle) {
  SyntheticSpec sparse_spec;
  sparse_spec.rows = 700;
  sparse_spec.features = 40;
  sparse_spec.density = 0.08;
  sparse_spec.density_skew = 0.8;
  sparse_spec.mean_distinct = 32.0;
  sparse_spec.distinct_cv = 0.5;
  sparse_spec.margin_scale = 3.0;
  sparse_spec.sparse_storage = true;
  sparse_spec.seed = 2203;
  const Dataset sparse_data = GenerateSynthetic(sparse_spec);
  const Dataset dense_data = TrainData(700);

  for (const Dataset* data : {&sparse_data, &dense_data}) {
    for (const bool quant : {false, true}) {
      for (const int workers : {1, 2, 3, 4}) {
        TrainParams p = DistParams(2);
        p.tree_size = 3;
        p.quantize_hist = quant;
        p.comm_compress = "dense";
        const DistributedResult oracle =
            DistributedGbdt::Train(*data, workers, p);
        p.comm_compress = "sparse";
        const DistributedResult compressed =
            DistributedGbdt::Train(*data, workers, p);
        EXPECT_EQ(SerializeModel(oracle.model),
                  SerializeModel(compressed.model))
            << "workers=" << workers << " quant=" << quant
            << " rows=" << data->num_rows();
        // The sparse path must actually compress relative to dense f64
        // whenever histograms were exchanged.
        if (workers > 1) {
          EXPECT_LT(compressed.comm.hist_wire_bytes,
                    compressed.comm.hist_dense_bytes);
        }
      }
    }
  }
}

// rows == workers: every shard holds exactly one row, so after the first
// split most nodes are empty on most ranks — their local histograms are
// all-zero and their sparse frames header-only.
TEST(DistributedGbdt, OneRowShards) {
  const Dataset data = TrainData(6);
  for (const char* compress : {"dense", "sparse"}) {
    TrainParams p = DistParams(2);
    p.tree_size = 3;
    p.comm_compress = compress;
    const DistributedResult result = DistributedGbdt::Train(data, 6, p);
    EXPECT_EQ(result.model.NumTrees(), 2u);
    for (const RegTree& tree : result.model.trees()) {
      EXPECT_TRUE(tree.CheckValid());
    }
  }
}

// ---------- SocketTransport ----------

// Distinct base port per test process; tests in this binary run
// sequentially and use different offsets.
int TestPort(int offset) { return 21100 + (getpid() % 997) * 7 % 8000 + offset; }

TEST(SocketTransport, CollectivesMatchInProcessSemantics) {
  const int world = 3;
  const int port = TestPort(0);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int rank = 0; rank < world; ++rank) {
    threads.emplace_back([&, rank] {
      try {
        auto transport = SocketTransport::Create(rank, world, port);
        double sum[2] = {static_cast<double>(rank + 1), 0.5};
        transport->AllreduceSum(sum, 2);
        if (sum[0] != 6.0 || sum[1] != 1.5) ++failures;
        int64_t isum = rank;
        transport->AllreduceSum(&isum, 1);
        if (isum != 3) ++failures;
        double mx = rank == 1 ? 9.0 : -1.0;
        transport->AllreduceMax(&mx, 1);
        if (mx != 9.0) ++failures;
        int payload = rank == 2 ? 77 : 0;
        transport->Broadcast(&payload, sizeof(payload), 2);
        if (payload != 77) ++failures;
        transport->Barrier();
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(SocketTransport, TrainedModelMatchesInProcessBitwise) {
  const Dataset data = TrainData(900);
  TrainParams p = DistParams(2);
  p.tree_size = 3;
  p.quantize_hist = true;
  p.comm_compress = "sparse";
  const int world = 3;
  const DistributedResult inproc = DistributedGbdt::Train(data, world, p);
  const std::string expect = SerializeModel(inproc.model);

  const int port = TestPort(10);
  std::vector<std::string> models(world);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int rank = 0; rank < world; ++rank) {
    threads.emplace_back([&, rank] {
      try {
        auto transport = SocketTransport::Create(rank, world, port);
        Communicator comm(*transport);
        models[static_cast<size_t>(rank)] = SerializeModel(
            DistributedGbdt::TrainShard(data, comm, p));
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  for (int rank = 0; rank < world; ++rank) {
    EXPECT_EQ(models[static_cast<size_t>(rank)], expect) << "rank " << rank;
  }
}

TEST(SocketTransport, RejectsMalformedHandshakeFrame) {
  const int port = TestPort(20);
  std::atomic<bool> threw{false};
  std::thread root([&] {
    try {
      // The handshake validates every frame; garbage must throw, not be
      // interpreted.
      SocketTransport::Create(0, 2, port, /*timeout_ms=*/5000);
    } catch (const std::runtime_error&) {
      threw = true;
    }
  });
  std::thread client([&] {
    // Raw TCP client sending 64 bytes of garbage instead of a hello.
    int fd = -1;
    for (int attempt = 0; attempt < 200; ++attempt) {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      ASSERT_GE(fd, 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<uint16_t>(port));
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0) {
        break;
      }
      ::close(fd);
      fd = -1;
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    ASSERT_GE(fd, 0) << "could not connect to test root";
    uint8_t garbage[64];
    std::memset(garbage, 0xAB, sizeof(garbage));
    (void)::send(fd, garbage, sizeof(garbage), 0);
    ::close(fd);
  });
  root.join();
  client.join();
  EXPECT_TRUE(threw.load());
}

}  // namespace
}  // namespace harp
