// Tests for the simulated cluster communicator and distributed training.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "core/metrics.h"
#include "data/synthetic.h"
#include "distributed/dist_gbdt.h"
#include "test_util.h"

namespace harp {
namespace {

// ---------- Communicator ----------

class ClusterSizes : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Worlds, ClusterSizes, ::testing::Values(1, 2, 3, 5));

TEST_P(ClusterSizes, AllreduceSumsAcrossRanks) {
  const int world = GetParam();
  SimulatedCluster cluster(world);
  cluster.Run([&](Communicator& comm) {
    std::vector<double> data(16);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<double>(comm.rank() + 1) * (i + 1);
    }
    comm.AllreduceSum(data.data(), data.size());
    // Sum over ranks r of (r+1)*(i+1) = (i+1) * world(world+1)/2.
    const double factor = world * (world + 1) / 2.0;
    for (size_t i = 0; i < data.size(); ++i) {
      EXPECT_DOUBLE_EQ(data[i], factor * (i + 1))
          << "rank " << comm.rank() << " slot " << i;
    }
  });
}

TEST_P(ClusterSizes, RepeatedCollectivesStayInSync) {
  const int world = GetParam();
  SimulatedCluster cluster(world);
  cluster.Run([&](Communicator& comm) {
    int64_t value = 1;
    for (int round = 0; round < 200; ++round) {
      int64_t local = value;
      comm.AllreduceSum(&local, 1);
      EXPECT_EQ(local, value * world) << "round " << round;
    }
  });
}

TEST(Communicator, AllreduceGhPairs) {
  SimulatedCluster cluster(3);
  cluster.Run([&](Communicator& comm) {
    GHPair data{static_cast<double>(comm.rank()), 1.0};
    comm.AllreduceSum(&data, 1);
    EXPECT_DOUBLE_EQ(data.g, 0.0 + 1.0 + 2.0);
    EXPECT_DOUBLE_EQ(data.h, 3.0);
  });
}

TEST(Communicator, BroadcastFromEachRoot) {
  for (int root = 0; root < 3; ++root) {
    SimulatedCluster cluster(3);
    cluster.Run([&](Communicator& comm) {
      int payload[4] = {0, 0, 0, 0};
      if (comm.rank() == root) {
        for (int i = 0; i < 4; ++i) payload[i] = 100 * root + i;
      }
      comm.Broadcast(payload, sizeof(payload), root);
      for (int i = 0; i < 4; ++i) EXPECT_EQ(payload[i], 100 * root + i);
    });
  }
}

TEST(Communicator, BarrierOrdersPhases) {
  SimulatedCluster cluster(4);
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  cluster.Run([&](Communicator& comm) {
    phase1.fetch_add(1);
    comm.Barrier();
    if (phase1.load() != 4) violated.store(true);
  });
  EXPECT_FALSE(violated.load());
}

TEST(Communicator, CountsTraffic) {
  SimulatedCluster cluster(2);
  cluster.Run([&](Communicator& comm) {
    double v = 1.0;
    comm.AllreduceSum(&v, 1);
    comm.Barrier();
  });
  const CommStats stats = cluster.TotalStats();
  EXPECT_EQ(stats.allreduce_calls, 2);
  EXPECT_EQ(stats.allreduce_bytes, 2 * 8);  // 8 bytes x (world-1) x ranks
  EXPECT_EQ(stats.barriers, 2);
}

TEST(Communicator, WorkerExceptionPropagates) {
  SimulatedCluster cluster(2);
  EXPECT_THROW(cluster.Run([&](Communicator& comm) {
    if (comm.rank() == 1) throw std::runtime_error("worker died");
    // Rank 0 must not deadlock waiting for rank 1 — it does no
    // collectives here.
  }),
               std::runtime_error);
}

// ---------- DistributedGbdt ----------

Dataset TrainData(uint32_t rows = 4000) {
  SyntheticSpec spec;
  spec.rows = rows;
  spec.features = 10;
  spec.density = 0.9;
  spec.margin_scale = 3.0;
  spec.seed = 1101;
  return GenerateSynthetic(spec);
}

TrainParams DistParams(int trees = 5) {
  TrainParams p;
  p.num_trees = trees;
  p.tree_size = 4;
  p.grow_policy = GrowPolicy::kTopK;
  p.topk = 8;
  return p;
}

TEST(DistributedGbdt, SingleWorkerLearns) {
  const Dataset data = TrainData();
  const DistributedResult result =
      DistributedGbdt::Train(data, 1, DistParams(10));
  EXPECT_GT(Auc(data.labels(), result.model.Predict(data)), 0.85);
}

TEST(DistributedGbdt, WorkerCountDoesNotChangeTheModel) {
  const Dataset data = TrainData();
  const DistributedResult one = DistributedGbdt::Train(data, 1, DistParams());
  for (int workers : {2, 4}) {
    const DistributedResult many =
        DistributedGbdt::Train(data, workers, DistParams());
    ASSERT_EQ(one.model.NumTrees(), many.model.NumTrees());
    for (size_t t = 0; t < one.model.NumTrees(); ++t) {
      // Identical structure and splits. Leaf values may differ at the
      // last float bit from summation order; compare structure + predict.
      const RegTree& a = one.model.tree(t);
      const RegTree& b = many.model.tree(t);
      ASSERT_EQ(a.num_nodes(), b.num_nodes()) << "workers " << workers;
      for (int i = 0; i < a.num_nodes(); ++i) {
        EXPECT_EQ(a.node(i).IsLeaf(), b.node(i).IsLeaf());
        if (!a.node(i).IsLeaf()) {
          EXPECT_EQ(a.node(i).split_feature, b.node(i).split_feature);
          EXPECT_EQ(a.node(i).split_bin, b.node(i).split_bin);
          EXPECT_EQ(a.node(i).default_left, b.node(i).default_left);
        } else {
          EXPECT_NEAR(a.node(i).leaf_value, b.node(i).leaf_value, 1e-9);
        }
        EXPECT_EQ(a.node(i).num_rows, b.node(i).num_rows);
      }
    }
  }
}

TEST(DistributedGbdt, MatchesSingleNodeTrainerStructure) {
  // The distributed histogram-aggregation must reproduce the single-node
  // HarpGBDT trees (same algorithm, different plumbing).
  const Dataset data = TrainData(2500);
  TrainParams p = DistParams(3);
  const DistributedResult dist = DistributedGbdt::Train(data, 3, p);

  p.mode = ParallelMode::kDP;
  p.num_threads = 1;
  GbdtTrainer trainer(p);
  const GbdtModel local = trainer.Train(data);
  ASSERT_EQ(local.NumTrees(), dist.model.NumTrees());
  for (size_t t = 0; t < local.NumTrees(); ++t) {
    const RegTree& a = local.tree(t);
    const RegTree& b = dist.model.tree(t);
    ASSERT_EQ(a.num_nodes(), b.num_nodes()) << "tree " << t;
    for (int i = 0; i < a.num_nodes(); ++i) {
      if (!a.node(i).IsLeaf()) {
        EXPECT_EQ(a.node(i).split_feature, b.node(i).split_feature);
        EXPECT_EQ(a.node(i).split_bin, b.node(i).split_bin);
      } else {
        EXPECT_NEAR(a.node(i).leaf_value, b.node(i).leaf_value, 1e-9);
      }
    }
  }
}

TEST(DistributedGbdt, CommunicationVolumeScalesWithWorkers) {
  const Dataset data = TrainData(2000);
  const DistributedResult two = DistributedGbdt::Train(data, 2, DistParams(2));
  const DistributedResult four =
      DistributedGbdt::Train(data, 4, DistParams(2));
  EXPECT_GT(two.comm.allreduce_calls, 0);
  // Per-rank calls are equal; total calls and bytes grow with world size.
  EXPECT_GT(four.comm.allreduce_calls, two.comm.allreduce_calls);
  EXPECT_GT(four.comm.allreduce_bytes, two.comm.allreduce_bytes);
}

TEST(DistributedGbdt, UnevenShardsHandled) {
  const Dataset data = TrainData(1003);  // does not divide evenly
  const DistributedResult result =
      DistributedGbdt::Train(data, 4, DistParams(3));
  EXPECT_EQ(result.model.NumTrees(), 3u);
  for (const RegTree& tree : result.model.trees()) {
    EXPECT_TRUE(tree.CheckValid());
    EXPECT_EQ(tree.node(0).num_rows, data.num_rows());
  }
}

TEST(DistributedGbdtDeath, MoreWorkersThanRows) {
  const Dataset data = TrainData(4);
  EXPECT_DEATH(DistributedGbdt::Train(data, 8, DistParams(1)), "CHECK");
}

}  // namespace
}  // namespace harp
