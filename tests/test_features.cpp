// Tests for the production-feature extensions: row/column sampling, early
// stopping with eval sets, feature importance, binned batch prediction.
#include <gtest/gtest.h>

#include <algorithm>

#include "harpgbdt.h"
#include "test_util.h"

namespace harp {
namespace {

Dataset Learnable(uint32_t rows, uint64_t seed = 801) {
  SyntheticSpec spec;
  spec.rows = rows;
  spec.features = 12;
  spec.density = 0.9;
  spec.active_features = 4;  // few strong features: importance is peaked
  spec.margin_scale = 3.0;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

TrainParams Fast(int trees = 10) {
  TrainParams p;
  p.num_trees = trees;
  p.tree_size = 4;
  p.num_threads = 2;
  return p;
}

// ---------- sampling ----------

TEST(Sampling, SubsampleStillLearns) {
  const Dataset train = Learnable(3000);
  TrainParams p = Fast(15);
  p.subsample = 0.5;
  GbdtTrainer trainer(p);
  const GbdtModel model = trainer.Train(train);
  EXPECT_GT(Auc(train.labels(), model.Predict(train)), 0.80);
}

TEST(Sampling, SubsampleIsDeterministic) {
  const Dataset train = Learnable(1500);
  TrainParams p = Fast(4);
  p.subsample = 0.6;
  const GbdtModel a = GbdtTrainer(p).Train(train);
  const GbdtModel b = GbdtTrainer(p).Train(train);
  for (size_t t = 0; t < a.NumTrees(); ++t) {
    EXPECT_TRUE(harp::testing::TreesEqual(a.tree(t), b.tree(t)));
  }
}

TEST(Sampling, SubsampleChangesTrees) {
  const Dataset train = Learnable(1500);
  TrainParams p = Fast(3);
  const GbdtModel full = GbdtTrainer(p).Train(train);
  p.subsample = 0.5;
  const GbdtModel sampled = GbdtTrainer(p).Train(train);
  bool any_diff = false;
  for (size_t t = 0; t < full.NumTrees(); ++t) {
    if (!harp::testing::TreesEqual(full.tree(t), sampled.tree(t))) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Sampling, ColsampleRestrictsSplitFeatures) {
  const Dataset train = Learnable(2000);
  TrainParams p = Fast(6);
  p.colsample_bytree = 0.25;
  const GbdtModel model = GbdtTrainer(p).Train(train);
  // With 12 features and 25% sampling, no single tree may use more than 12
  // distinct features, and across trees the per-tree distinct count must
  // be small.
  for (const RegTree& tree : model.trees()) {
    std::set<uint32_t> used;
    for (const TreeNode& n : tree.nodes()) {
      if (!n.IsLeaf()) used.insert(n.split_feature);
    }
    EXPECT_LE(used.size(), 6u);  // sampled subset is ~3 features
  }
  EXPECT_GT(Auc(train.labels(), model.Predict(train)), 0.6);
}

TEST(Sampling, ColsampleWorksInAsyncMode) {
  const Dataset train = Learnable(2000);
  TrainParams p = Fast(5);
  p.mode = ParallelMode::kASYNC;
  p.grow_policy = GrowPolicy::kTopK;
  p.topk = 8;
  p.colsample_bytree = 0.5;
  const GbdtModel model = GbdtTrainer(p).Train(train);
  for (const RegTree& tree : model.trees()) {
    EXPECT_TRUE(tree.CheckValid());
  }
}

TEST(SamplingDeath, OutOfRangeRejected) {
  TrainParams p = Fast();
  p.subsample = 0.0;
  EXPECT_DEATH(p.Validate(), "CHECK");
  p.subsample = 1.5;
  EXPECT_DEATH(p.Validate(), "CHECK");
  p.subsample = 1.0;
  p.colsample_bytree = -0.1;
  EXPECT_DEATH(p.Validate(), "CHECK");
}

// ---------- eval sets & early stopping ----------

TEST(EvalSetTest, HistoryRecordedAndImproves) {
  const Dataset all = Learnable(3000);
  const Dataset train = all.Slice(0, 2400);
  const Dataset valid = all.Slice(2400, 3000);
  TrainParams p = Fast(12);
  EvalSet eval;
  eval.data = &valid;
  GbdtTrainer trainer(p);
  trainer.Train(train, nullptr, {}, &eval);
  ASSERT_EQ(eval.history.size(), 12u);
  EXPECT_LT(eval.history.back(), eval.history.front());
  EXPECT_GE(eval.best_iteration, 0);
  EXPECT_LE(eval.best_metric, eval.history.front());
}

TEST(EvalSetTest, EarlyStoppingTruncatesTraining) {
  // Overfit-prone setup: tiny noisy training set, many trees.
  SyntheticSpec spec;
  spec.rows = 600;
  spec.features = 10;
  spec.margin_scale = 0.8;  // noisy labels
  spec.seed = 811;
  const Dataset all = GenerateSynthetic(spec);
  const Dataset train = all.Slice(0, 400);
  const Dataset valid = all.Slice(400, 600);

  TrainParams p = Fast(60);
  p.tree_size = 5;
  EvalSet eval;
  eval.data = &valid;
  eval.early_stopping_rounds = 5;
  const GbdtModel model = GbdtTrainer(p).Train(train, nullptr, {}, &eval);
  // Stopped early: fewer trees than requested, exactly
  // best_iteration + 1 + patience trees were built.
  EXPECT_LT(model.NumTrees(), 60u);
  EXPECT_EQ(model.NumTrees(),
            static_cast<size_t>(eval.best_iteration + 1 +
                                eval.early_stopping_rounds));
}

TEST(EvalSetTest, RegressionUsesRmse) {
  SyntheticSpec spec;
  spec.rows = 1000;
  spec.features = 8;
  spec.label = LabelKind::kRegression;
  spec.seed = 813;
  const Dataset all = GenerateSynthetic(spec);
  const Dataset train = all.Slice(0, 800);
  const Dataset valid = all.Slice(800, 1000);
  TrainParams p = Fast(10);
  p.objective = ObjectiveKind::kSquaredError;
  EvalSet eval;
  eval.data = &valid;
  GbdtTrainer(p).Train(train, nullptr, {}, &eval);
  ASSERT_FALSE(eval.history.empty());
  const std::vector<double> direct_rmse = eval.history;
  EXPECT_LT(direct_rmse.back(), direct_rmse.front());
}

TEST(EvalSetTest, MetricResolutionOrder) {
  const Dataset all = Learnable(1200);
  const Dataset train = all.Slice(0, 1000);
  const Dataset valid = all.Slice(1000, 1200);
  TrainParams p = Fast(3);

  // Default: derived from the objective.
  EvalSet by_default;
  by_default.data = &valid;
  GbdtTrainer(p).Train(train, nullptr, {}, &by_default);
  EXPECT_EQ(by_default.metric_name, "logloss");
  EXPECT_FALSE(by_default.higher_is_better);

  // params.eval_metric overrides the default.
  TrainParams q = p;
  q.eval_metric = "auc";
  EvalSet by_params;
  by_params.data = &valid;
  GbdtTrainer(q).Train(train, nullptr, {}, &by_params);
  EXPECT_EQ(by_params.metric_name, "auc");
  EXPECT_TRUE(by_params.higher_is_better);

  // EvalSet.metric overrides both.
  EvalSet by_eval;
  by_eval.data = &valid;
  by_eval.metric = "error";
  GbdtTrainer(q).Train(train, nullptr, {}, &by_eval);
  EXPECT_EQ(by_eval.metric_name, "error");
  EXPECT_FALSE(by_eval.higher_is_better);
}

TEST(EvalSetTest, AucHistoryTracksMaximum) {
  const Dataset all = Learnable(3000);
  const Dataset train = all.Slice(0, 2400);
  const Dataset valid = all.Slice(2400, 3000);
  TrainParams p = Fast(12);
  EvalSet eval;
  eval.data = &valid;
  eval.metric = "auc";
  GbdtTrainer(p).Train(train, nullptr, {}, &eval);
  ASSERT_EQ(eval.history.size(), 12u);
  EXPECT_TRUE(eval.higher_is_better);
  // AUC improves on separable data and best_* track the MAXIMUM.
  EXPECT_GT(eval.history.back(), eval.history.front());
  const double max_seen =
      *std::max_element(eval.history.begin(), eval.history.end());
  EXPECT_DOUBLE_EQ(eval.best_metric, max_seen);
  EXPECT_DOUBLE_EQ(eval.history[static_cast<size_t>(eval.best_iteration)],
                   max_seen);
}

TEST(EvalSetTest, AucEarlyStoppingStopsWhenAucStopsRising) {
  // Regression test for direction-aware stopping: with a higher-is-better
  // metric, training must continue while the metric RISES (a loss-style
  // "stop on no decrease" rule would bail out after one round) and stop
  // only after `rounds` iterations without a new maximum.
  SyntheticSpec spec;
  spec.rows = 600;
  spec.features = 10;
  spec.margin_scale = 0.8;  // noisy: validation AUC plateaus early
  spec.seed = 821;
  const Dataset all = GenerateSynthetic(spec);
  const Dataset train = all.Slice(0, 400);
  const Dataset valid = all.Slice(400, 600);

  TrainParams p = Fast(60);
  p.tree_size = 5;
  EvalSet eval;
  eval.data = &valid;
  eval.metric = "auc";
  eval.early_stopping_rounds = 5;
  const GbdtModel model = GbdtTrainer(p).Train(train, nullptr, {}, &eval);
  EXPECT_LT(model.NumTrees(), 60u);
  EXPECT_EQ(model.NumTrees(),
            static_cast<size_t>(eval.best_iteration + 1 +
                                eval.early_stopping_rounds));
  // The run must have gone past the first iteration: AUC rose at least
  // once before plateauing.
  EXPECT_GT(eval.best_iteration, 0);
  for (int i = 0; i <= eval.best_iteration; ++i) {
    EXPECT_LE(eval.history[static_cast<size_t>(i)], eval.best_metric);
  }
}

// ---------- feature importance ----------

TEST(Importance, ActiveFeaturesDominate) {
  const Dataset train = Learnable(3000);
  const GbdtModel model = GbdtTrainer(Fast(15)).Train(train);
  const FeatureImportance importance =
      ComputeImportance(model, train.num_features());
  // Features 0..3 carry the label signal; they should hold most gain.
  double active_gain = 0.0;
  double total_gain = 0.0;
  for (uint32_t f = 0; f < importance.num_features(); ++f) {
    total_gain += importance.total_gain[f];
    if (f < 4) active_gain += importance.total_gain[f];
  }
  ASSERT_GT(total_gain, 0.0);
  EXPECT_GT(active_gain / total_gain, 0.6);
  const auto top = TopFeaturesByGain(importance, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_LT(top[0], 4u);
}

TEST(Importance, CountsMatchTreeNodes) {
  const Dataset train = Learnable(1000);
  const GbdtModel model = GbdtTrainer(Fast(5)).Train(train);
  const FeatureImportance importance =
      ComputeImportance(model, train.num_features());
  int64_t expected_splits = 0;
  for (const RegTree& tree : model.trees()) {
    expected_splits += tree.NumLeaves() - 1;
  }
  int64_t counted = 0;
  for (int64_t c : importance.split_count) counted += c;
  EXPECT_EQ(counted, expected_splits);
}

TEST(Importance, FormatListsTopK) {
  const Dataset train = Learnable(800);
  const GbdtModel model = GbdtTrainer(Fast(3)).Train(train);
  const FeatureImportance importance =
      ComputeImportance(model, train.num_features());
  const std::string table = FormatImportance(importance, 3);
  EXPECT_NE(table.find("gain"), std::string::npos);
  // Header + 3 rows.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 4);
}

// ---------- binned batch prediction ----------

TEST(BinnedPredict, MatchesRawPrediction) {
  const Dataset train = Learnable(1500);
  const Dataset test = Learnable(500, 802);
  const GbdtModel model = GbdtTrainer(Fast(8)).Train(train);

  const BinnedMatrix binned = model.BinDataset(test);
  const std::vector<double> raw = model.PredictMargins(test);
  const std::vector<double> fast = model.PredictMarginsBinned(binned);
  ASSERT_EQ(raw.size(), fast.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_DOUBLE_EQ(raw[i], fast[i]) << "row " << i;
  }
}

TEST(BinnedPredict, ParallelMatchesSerial) {
  const Dataset train = Learnable(1200);
  const GbdtModel model = GbdtTrainer(Fast(5)).Train(train);
  const BinnedMatrix binned = model.BinDataset(train);
  ThreadPool pool(4);
  EXPECT_EQ(model.PredictMarginsBinned(binned),
            model.PredictMarginsBinned(binned, &pool));
}

TEST(BinnedPredict, LeafIndicesAreLeaves) {
  const Dataset train = Learnable(1000);
  const GbdtModel model = GbdtTrainer(Fast(4)).Train(train);
  const BinnedMatrix binned = model.BinDataset(train);
  for (size_t t = 0; t < model.NumTrees(); ++t) {
    const std::vector<int> leaves = model.PredictLeafIndices(binned, t);
    for (int leaf : leaves) {
      ASSERT_GE(leaf, 0);
      ASSERT_LT(leaf, model.tree(t).num_nodes());
      EXPECT_TRUE(model.tree(t).node(leaf).IsLeaf());
    }
  }
}

TEST(BinnedPredict, TruncatedEnsemble) {
  const Dataset train = Learnable(800);
  const GbdtModel model = GbdtTrainer(Fast(6)).Train(train);
  const BinnedMatrix binned = model.BinDataset(train);
  const auto all6 = model.PredictMarginsBinned(binned);
  const auto first3 = model.PredictMarginsBinned(binned, nullptr, 3);
  // Margins with fewer trees differ and equal the raw truncated path.
  const auto raw3 = model.PredictMargins(train, nullptr, 3);
  EXPECT_NE(all6, first3);
  for (size_t i = 0; i < first3.size(); ++i) {
    EXPECT_DOUBLE_EQ(first3[i], raw3[i]);
  }
}

}  // namespace
}  // namespace harp
