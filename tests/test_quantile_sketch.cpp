// Tests for the Greenwald-Khanna quantile sketch and the sketch-based
// cut computation.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>

#include "common/random.h"
#include "harpgbdt.h"
#include "data/quantile_sketch.h"
#include "data/quantile.h"
#include "data/synthetic.h"
#include "parallel/thread_pool.h"

namespace harp {
namespace {

// Checks that every queried quantile's value is rank-compatible with the
// target: with ties, a value occupies the rank interval
// [count(< v), count(<= v)], and the target rank must fall within
// eps_allow * n of that interval.
void CheckRankError(const GkSketch& sketch, std::vector<float> values,
                    double eps_allow) {
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const float v = sketch.Query(q);
    const double rank_lo = static_cast<double>(
        std::lower_bound(values.begin(), values.end(), v) - values.begin());
    const double rank_hi = static_cast<double>(
        std::upper_bound(values.begin(), values.end(), v) - values.begin());
    const double target = q * n;
    EXPECT_GE(target, rank_lo - eps_allow * n) << "quantile " << q;
    EXPECT_LE(target, rank_hi + eps_allow * n) << "quantile " << q;
  }
}

struct Distribution {
  const char* name;
  std::function<float(Rng&)> draw;
};

class SketchDistributions
    : public ::testing::TestWithParam<int> {};  // param = distribution id

float Draw(int id, Rng& rng) {
  switch (id) {
    case 0: return static_cast<float>(rng.NextDouble());           // uniform
    case 1: return static_cast<float>(rng.Normal());               // normal
    case 2: return static_cast<float>(rng.Exponential(1.0));       // skewed
    default: return static_cast<float>(rng.NextBelow(20));         // ties
  }
}

TEST_P(SketchDistributions, RankErrorWithinEps) {
  const double eps = 0.01;
  GkSketch sketch(eps);
  Rng rng(42 + GetParam());
  std::vector<float> values;
  for (int i = 0; i < 50000; ++i) {
    const float v = Draw(GetParam(), rng);
    values.push_back(v);
    sketch.Add(v);
  }
  EXPECT_EQ(sketch.count(), 50000);
  // Sketch must be far smaller than the stream.
  EXPECT_LT(sketch.TupleCount(), 4000u);
  CheckRankError(sketch, values, 3.0 * eps);  // slack for tie plateaus
}

std::string DistributionName(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0: return "uniform";
    case 1: return "normal";
    case 2: return "exponential";
    default: return "ties";
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, SketchDistributions,
                         ::testing::Values(0, 1, 2, 3), DistributionName);

TEST(GkSketchTest, SmallStreamsAreExact) {
  GkSketch sketch(0.1);
  for (float v : {5.0f, 1.0f, 3.0f}) sketch.Add(v);
  EXPECT_FLOAT_EQ(sketch.Query(0.0), 1.0f);
  EXPECT_FLOAT_EQ(sketch.Query(1.0), 5.0f);
}

TEST(GkSketchTest, MergePreservesError) {
  const double eps = 0.01;
  GkSketch a(eps);
  GkSketch b(eps);
  Rng rng(7);
  std::vector<float> values;
  for (int i = 0; i < 20000; ++i) {
    const float v = static_cast<float>(rng.Normal());
    values.push_back(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 20000);
  // Merged error bound is eps_a + eps_b = 2 eps; allow slack on top.
  CheckRankError(a, values, 4.0 * eps);
}

TEST(GkSketchTest, MergeWithEmpty) {
  GkSketch a(0.05);
  GkSketch b(0.05);
  a.Add(1.0f);
  a.Merge(b);  // no-op
  EXPECT_EQ(a.count(), 1);
  b.Merge(a);
  EXPECT_EQ(b.count(), 1);
  EXPECT_FLOAT_EQ(b.Query(0.5), 1.0f);
}

TEST(GkSketchTest, EvenQuantilesAscendingAndCoverMax) {
  GkSketch sketch(0.01);
  Rng rng(9);
  float max_seen = -1e30f;
  for (int i = 0; i < 10000; ++i) {
    const float v = static_cast<float>(rng.Normal());
    max_seen = std::max(max_seen, v);
    sketch.Add(v);
  }
  const std::vector<float> cuts = sketch.EvenQuantiles(32);
  ASSERT_FALSE(cuts.empty());
  EXPECT_LE(cuts.size(), 32u);
  for (size_t i = 1; i < cuts.size(); ++i) EXPECT_LT(cuts[i - 1], cuts[i]);
  EXPECT_FLOAT_EQ(cuts.back(), max_seen);
}

TEST(GkSketchTest, CompressBoundsMemory) {
  const double eps = 0.005;
  GkSketch sketch(eps);
  Rng rng(11);
  for (int i = 0; i < 200000; ++i) {
    sketch.Add(static_cast<float>(rng.NextDouble()));
  }
  // GK space is O((1/eps) log(eps n)); allow a generous constant.
  EXPECT_LT(sketch.TupleCount(), static_cast<size_t>(20.0 / eps));
}

TEST(GkSketchDeath, InvalidEps) {
  EXPECT_DEATH(GkSketch(0.0), "CHECK");
  EXPECT_DEATH(GkSketch(0.5), "CHECK");
}

// ---------- ComputeSketch integration ----------

TEST(ComputeSketch, CutsApproximateExactCuts) {
  SyntheticSpec spec;
  spec.rows = 30000;
  spec.features = 6;
  spec.density = 0.9;
  spec.mean_distinct = 2000;  // force the quantile path
  spec.max_distinct = 4000;
  spec.seed = 77;
  const Dataset ds = GenerateSynthetic(spec);

  const QuantileCuts approx = QuantileCuts::ComputeSketch(ds, 64);
  ASSERT_EQ(approx.num_features(), ds.num_features());

  // The sketch cuts target evenly spaced ROW-MASS quantiles (unlike the
  // exact Compute path, which spaces cuts over distinct values): cut i of
  // k should sit near rank i/k of the feature's value stream.
  for (uint32_t f = 0; f < ds.num_features(); ++f) {
    EXPECT_GT(approx.NumCuts(f), 32u);
    EXPECT_LE(approx.NumCuts(f), 63u);
    std::vector<float> values;
    for (uint32_t r = 0; r < ds.num_rows(); ++r) {
      const float v = ds.At(r, f);
      if (!IsMissing(v)) values.push_back(v);
    }
    std::sort(values.begin(), values.end());
    const double n = static_cast<double>(values.size());
    const uint32_t cuts = approx.NumCuts(f);
    for (uint32_t b = 1; b < cuts; ++b) {  // skip the max-coverage cut
      const float cut = approx.CutFor(f, b);
      const double rank_hi = static_cast<double>(
          std::upper_bound(values.begin(), values.end(), cut) -
          values.begin());
      const double expected = static_cast<double>(b) / 63.0;
      // eps default is 1/(8*64) per sketch; allow the merged bound plus
      // quantization of the value grid.
      EXPECT_NEAR(rank_hi / n, expected, 0.05)
          << "feature " << f << " cut " << b;
    }
  }
}

TEST(ComputeSketch, ParallelStillValid) {
  SyntheticSpec spec;
  spec.rows = 20000;
  spec.features = 5;
  spec.mean_distinct = 1000;
  spec.max_distinct = 4000;
  spec.seed = 79;
  const Dataset ds = GenerateSynthetic(spec);
  ThreadPool pool(4);
  const QuantileCuts cuts = QuantileCuts::ComputeSketch(ds, 32, 0.0, &pool);
  for (uint32_t f = 0; f < cuts.num_features(); ++f) {
    ASSERT_GE(cuts.NumCuts(f), 8u);
    for (uint32_t b = 2; b <= cuts.NumCuts(f); ++b) {
      EXPECT_LT(cuts.CutFor(f, b - 1), cuts.CutFor(f, b));
    }
    // Every present value must map into a valid bin.
    for (uint32_t r = 0; r < 500; ++r) {
      const float v = ds.At(r, f);
      if (IsMissing(v)) continue;
      const uint32_t bin = cuts.BinFor(f, v);
      EXPECT_GE(bin, 1u);
      EXPECT_LE(bin, cuts.NumCuts(f));
    }
  }
}

TEST(ComputeSketch, TrainingOnSketchCutsWorks) {
  SyntheticSpec spec;
  spec.rows = 8000;
  spec.features = 10;
  spec.mean_distinct = 500;
  spec.max_distinct = 4000;
  spec.margin_scale = 3.0;
  spec.seed = 81;
  const Dataset ds = GenerateSynthetic(spec);

  // Bin with sketch-derived cuts and train; accuracy must be on par with
  // exact cuts.
  const BinnedMatrix exact_matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 64));
  const BinnedMatrix sketch_matrix =
      BinnedMatrix::Build(ds, QuantileCuts::ComputeSketch(ds, 64));
  TrainParams p;
  p.num_trees = 10;
  p.tree_size = 4;
  p.num_threads = 2;
  GbdtTrainer trainer(p);
  const double auc_exact =
      Auc(ds.labels(),
          trainer.TrainBinned(exact_matrix, ds.labels()).Predict(ds));
  const double auc_sketch =
      Auc(ds.labels(),
          trainer.TrainBinned(sketch_matrix, ds.labels()).Predict(ds));
  EXPECT_GT(auc_sketch, auc_exact - 0.02);
  EXPECT_GT(auc_sketch, 0.8);
}

}  // namespace
}  // namespace harp
