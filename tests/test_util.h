// Shared helpers for the GBDT core tests: small random datasets, naive
// reference implementations of BuildHist/FindSplit, and tree comparisons.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "core/gh.h"
#include "core/split.h"
#include "core/tree.h"
#include "data/binned_matrix.h"
#include "data/dataset.h"
#include "data/quantile.h"

namespace harp::testing {

// Random dense dataset with missing values and binary labels.
inline Dataset MakeDataset(uint32_t rows, uint32_t features, double density,
                           uint64_t seed, uint32_t distinct = 32) {
  Rng rng(seed);
  std::vector<float> values(static_cast<size_t>(rows) * features);
  std::vector<float> labels(rows);
  for (auto& v : values) {
    if (!rng.Bernoulli(density)) {
      v = kMissingValue;
    } else {
      v = static_cast<float>(rng.NextBelow(distinct));
    }
  }
  for (auto& l : labels) l = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  return Dataset::FromDense(rows, features, std::move(values),
                            std::move(labels));
}

// Random per-row gradients (hessians positive).
inline std::vector<GradientPair> MakeGradients(uint32_t rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<GradientPair> gh(rows);
  for (auto& g : gh) {
    g.g = static_cast<float>(rng.Normal());
    g.h = static_cast<float>(0.1 + rng.NextDouble());
  }
  return gh;
}

// Naive reference histogram for a row subset.
inline std::vector<GHPair> NaiveHist(const BinnedMatrix& matrix,
                                     const std::vector<GradientPair>& gh,
                                     const std::vector<uint32_t>& rows) {
  std::vector<GHPair> hist(matrix.TotalBins());
  for (uint32_t rid : rows) {
    for (uint32_t f = 0; f < matrix.num_features(); ++f) {
      hist[matrix.BinOffset(f) + matrix.Bin(rid, f)].Add(gh[rid].g,
                                                         gh[rid].h);
    }
  }
  return hist;
}

inline GHPair SumGh(const std::vector<GradientPair>& gh,
                    const std::vector<uint32_t>& rows) {
  GHPair sum;
  for (uint32_t rid : rows) sum.Add(gh[rid].g, gh[rid].h);
  return sum;
}

inline std::vector<uint32_t> AllRows(uint32_t n) {
  std::vector<uint32_t> rows(n);
  for (uint32_t i = 0; i < n; ++i) rows[i] = i;
  return rows;
}

// Structural + numeric equality of two trees.
inline bool TreesEqual(const RegTree& a, const RegTree& b) {
  if (a.num_nodes() != b.num_nodes()) return false;
  for (int i = 0; i < a.num_nodes(); ++i) {
    const TreeNode& x = a.node(i);
    const TreeNode& y = b.node(i);
    if (x.left != y.left || x.right != y.right || x.parent != y.parent) {
      return false;
    }
    if (!x.IsLeaf()) {
      if (x.split_feature != y.split_feature || x.split_bin != y.split_bin ||
          x.default_left != y.default_left) {
        return false;
      }
    } else if (x.leaf_value != y.leaf_value) {
      return false;
    }
  }
  return true;
}

}  // namespace harp::testing
