// Histogram tests: pool lifecycle, subtraction, and the central property
// sweep — DP and MP block-wise builders must reproduce a naive serial
// reference histogram for EVERY block configuration, thread count and
// MemBuf setting.
#include <gtest/gtest.h>

#include <string>

#include "core/hist_builder.h"
#include "test_util.h"

namespace harp {
namespace {

using harp::testing::MakeDataset;
using harp::testing::MakeGradients;
using harp::testing::NaiveHist;

// ---------- HistogramPool ----------

TEST(HistogramPool, AcquireZeroesRecycledBuffers) {
  HistogramPool pool(8);
  GHPair* a = pool.Acquire(1);
  a[3] = GHPair{1.0, 2.0};
  pool.Release(1);
  GHPair* b = pool.Acquire(2);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(b[i], GHPair{}) << "slot " << i;
  }
  pool.Release(2);
}

TEST(HistogramPool, TracksPeak) {
  HistogramPool pool(4);
  pool.Acquire(1);
  pool.Acquire(2);
  pool.Acquire(3);
  pool.Release(2);
  pool.Acquire(4);
  EXPECT_EQ(pool.PeakBytes(), 3 * 4 * sizeof(GHPair));
  pool.ReleaseAll();
  EXPECT_FALSE(pool.Has(1));
  // Peak persists after release.
  EXPECT_EQ(pool.PeakBytes(), 3 * 4 * sizeof(GHPair));
}

TEST(HistogramPool, HasAndGet) {
  HistogramPool pool(2);
  EXPECT_FALSE(pool.Has(5));
  GHPair* h = pool.Acquire(5);
  EXPECT_TRUE(pool.Has(5));
  EXPECT_EQ(pool.Get(5), h);
  pool.Release(5);
  EXPECT_FALSE(pool.Has(5));
}

TEST(HistogramPoolDeath, DoubleAcquireAndMissingGet) {
  HistogramPool pool(2);
  pool.Acquire(1);
  EXPECT_DEATH(pool.Acquire(1), "already owns");
  EXPECT_DEATH(pool.Get(9), "no histogram");
  EXPECT_DEATH(pool.Release(9), "no histogram");
}

TEST(HistogramPool, ConcurrentAcquireRelease) {
  HistogramPool pool(16);
  ThreadPool threads(4);
  threads.ParallelForDynamic(200, 1, [&](int64_t b, int64_t e, int) {
    for (int64_t i = b; i < e; ++i) {
      GHPair* h = pool.Acquire(static_cast<int>(i));
      h[0] = GHPair{static_cast<double>(i), 1.0};
      EXPECT_EQ(pool.Get(static_cast<int>(i))[0].g, static_cast<double>(i));
      pool.Release(static_cast<int>(i));
    }
  });
}

// ---------- kernels ----------

TEST(HistogramKernels, AddAndSubtract) {
  std::vector<GHPair> parent{{5, 5}, {3, 1}, {0, 0}};
  std::vector<GHPair> small{{2, 1}, {1, 1}, {0, 0}};
  std::vector<GHPair> large(3);
  SubtractHistogram(large.data(), parent.data(), small.data(), 3);
  EXPECT_EQ(large[0], (GHPair{3, 4}));
  EXPECT_EQ(large[1], (GHPair{2, 0}));
  AddHistogram(large.data(), small.data(), 3);
  EXPECT_EQ(large[0], (GHPair{5, 5}));
  ClearHistogram(large.data(), 3);
  EXPECT_EQ(large[2], GHPair{});
  EXPECT_EQ(large[0], GHPair{});
}

TEST(HistogramKernels, SumFeature) {
  std::vector<GHPair> hist{{1, 1}, {2, 2}, {3, 3}, {4, 4}};
  const GHPair sum = SumHistogramFeature(hist.data(), 1, 2);
  EXPECT_EQ(sum, (GHPair{5, 5}));
}

// ---------- builder property sweep ----------

struct BuilderCase {
  bool use_mp;       // MP builder (else DP)
  int feature_blk;   // 0 = all
  int node_blk;
  int bin_blk;       // 256 = disabled (DP ignores)
  bool membuf;
  int threads;
};

std::string CaseName(const ::testing::TestParamInfo<BuilderCase>& info) {
  const BuilderCase& c = info.param;
  std::string name = c.use_mp ? "MP" : "DP";
  name += "_f" + std::to_string(c.feature_blk);
  name += "_n" + std::to_string(c.node_blk);
  name += "_b" + std::to_string(c.bin_blk);
  name += c.membuf ? "_membuf" : "_gather";
  name += "_t" + std::to_string(c.threads);
  return name;
}

class HistBuilderSweep : public ::testing::TestWithParam<BuilderCase> {};

TEST_P(HistBuilderSweep, MatchesNaiveReference) {
  const BuilderCase& c = GetParam();

  const uint32_t rows = 700;
  const Dataset ds = MakeDataset(rows, 11, 0.8, 17, /*distinct=*/13);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16));
  const auto gh = MakeGradients(rows, 18);

  TrainParams params;
  params.feature_blk_size = c.feature_blk;
  params.node_blk_size = c.node_blk;
  params.bin_blk_size = c.bin_blk;
  params.use_membuf = c.membuf;

  ThreadPool pool(c.threads);
  RowPartitioner partitioner(rows, c.membuf);
  partitioner.Reset(gh, /*max_nodes=*/8, &pool);

  // Split the root on feature 0 so we have three nodes (1, 2 from the
  // split, plus we rebuild the root into node 3... keep 1 and 2).
  const uint32_t split_bin =
      std::max(1u, (matrix.NumBins(0) - 1) / 2);
  partitioner.ApplySplit(0, 1, 2, matrix, 0, split_bin,
                         /*default_left=*/false, &pool);
  ASSERT_GT(partitioner.NodeSize(1), 0u);
  ASSERT_GT(partitioner.NodeSize(2), 0u);

  HistogramPool hists(matrix.TotalBins());
  hists.Acquire(1);
  hists.Acquire(2);
  const BuildContext ctx{matrix, params, pool, partitioner, hists};
  const std::vector<int> nodes{1, 2};
  HistBuilderDP dp;
  HistBuilderMP mp;
  if (c.use_mp) {
    mp.Build(ctx, nodes);
  } else {
    dp.Build(ctx, nodes);
  }

  // Reference per node.
  for (int node : nodes) {
    std::vector<uint32_t> node_rows;
    partitioner.ForEachRowRange(
        node, 0, partitioner.NodeSize(node),
        [&](uint32_t rid, float, float) { node_rows.push_back(rid); });
    const std::vector<GHPair> expected = NaiveHist(matrix, gh, node_rows);
    const GHPair* actual = hists.Get(node);
    for (size_t s = 0; s < expected.size(); ++s) {
      ASSERT_NEAR(actual[s].g, expected[s].g, 1e-9)
          << "node " << node << " slot " << s;
      ASSERT_NEAR(actual[s].h, expected[s].h, 1e-9)
          << "node " << node << " slot " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BlockConfigs, HistBuilderSweep,
    ::testing::Values(
        // DP: feature blocks x node blocks x threads x membuf
        BuilderCase{false, 0, 1, 256, true, 1},
        BuilderCase{false, 0, 1, 256, true, 4},
        BuilderCase{false, 1, 1, 256, true, 4},
        BuilderCase{false, 3, 2, 256, true, 4},
        BuilderCase{false, 4, 2, 256, false, 2},
        BuilderCase{false, 0, 2, 256, false, 4},
        BuilderCase{false, 11, 1, 256, true, 3},
        // MP: adds bin blocking
        BuilderCase{true, 0, 1, 256, true, 1},
        BuilderCase{true, 1, 1, 256, true, 4},
        BuilderCase{true, 1, 2, 256, true, 4},
        BuilderCase{true, 3, 1, 8, true, 4},
        BuilderCase{true, 4, 2, 4, false, 4},
        BuilderCase{true, 0, 2, 16, false, 2},
        BuilderCase{true, 11, 2, 256, false, 3}),
    CaseName);

// Subtraction-trick cross-check: parent - sibling == direct build.
TEST(HistogramSubtraction, MatchesDirectBuild) {
  const uint32_t rows = 500;
  const Dataset ds = MakeDataset(rows, 6, 0.9, 29);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16));
  const auto gh = MakeGradients(rows, 30);

  ThreadPool pool(2);
  RowPartitioner partitioner(rows, true);
  partitioner.Reset(gh, 8, &pool);
  const std::vector<uint32_t> all = harp::testing::AllRows(rows);
  const std::vector<GHPair> parent_hist = NaiveHist(matrix, gh, all);

  partitioner.ApplySplit(0, 1, 2, matrix, 2, 1, false, &pool);
  std::vector<uint32_t> left_rows;
  std::vector<uint32_t> right_rows;
  partitioner.ForEachRowRange(1, 0, partitioner.NodeSize(1),
                              [&](uint32_t rid, float, float) {
                                left_rows.push_back(rid);
                              });
  partitioner.ForEachRowRange(2, 0, partitioner.NodeSize(2),
                              [&](uint32_t rid, float, float) {
                                right_rows.push_back(rid);
                              });
  const std::vector<GHPair> left = NaiveHist(matrix, gh, left_rows);
  const std::vector<GHPair> right_direct = NaiveHist(matrix, gh, right_rows);
  std::vector<GHPair> right_sub(matrix.TotalBins());
  SubtractHistogram(right_sub.data(), parent_hist.data(), left.data(),
                    matrix.TotalBins());
  for (size_t s = 0; s < right_sub.size(); ++s) {
    EXPECT_NEAR(right_sub[s].g, right_direct[s].g, 1e-9);
    EXPECT_NEAR(right_sub[s].h, right_direct[s].h, 1e-9);
  }
}

// Histogram total must equal the node's gradient sum, feature by feature.
TEST(HistogramInvariant, PerFeatureTotalsEqualNodeSum) {
  const uint32_t rows = 300;
  const Dataset ds = MakeDataset(rows, 5, 0.7, 31);
  const BinnedMatrix matrix =
      BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 16));
  const auto gh = MakeGradients(rows, 32);
  const auto all = harp::testing::AllRows(rows);
  const auto hist = NaiveHist(matrix, gh, all);
  const GHPair total = harp::testing::SumGh(gh, all);
  for (uint32_t f = 0; f < matrix.num_features(); ++f) {
    const GHPair fsum =
        SumHistogramFeature(hist.data(), matrix.BinOffset(f),
                            matrix.NumBins(f));
    EXPECT_NEAR(fsum.g, total.g, 1e-9);
    EXPECT_NEAR(fsum.h, total.h, 1e-9);
  }
}

}  // namespace
}  // namespace harp
