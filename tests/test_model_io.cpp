// Model serialization tests: bit-exact roundtrips and malformed input.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/gbdt.h"
#include "core/model_io.h"
#include "data/synthetic.h"
#include "predict/flat_forest.h"
#include "predict/predictor.h"

namespace harp {
namespace {

GbdtModel TrainSmallModel(ObjectiveKind objective = ObjectiveKind::kLogistic) {
  SyntheticSpec spec;
  spec.rows = 800;
  spec.features = 6;
  spec.density = 0.85;
  spec.seed = 701;
  if (objective == ObjectiveKind::kSquaredError) {
    spec.label = LabelKind::kRegression;
  }
  const Dataset train = GenerateSynthetic(spec);
  TrainParams p;
  p.num_trees = 5;
  p.tree_size = 4;
  p.num_threads = 2;
  p.objective = objective;
  GbdtTrainer trainer(p);
  return trainer.Train(train);
}

TEST(ModelIo, SerializeDeserializeRoundtripExact) {
  const GbdtModel model = TrainSmallModel();
  const std::string text = SerializeModel(model);
  GbdtModel loaded;
  std::string error;
  ASSERT_TRUE(DeserializeModel(text, &loaded, &error)) << error;

  ASSERT_EQ(loaded.NumTrees(), model.NumTrees());
  EXPECT_EQ(loaded.objective(), model.objective());
  EXPECT_EQ(loaded.base_margin(), model.base_margin());
  EXPECT_EQ(loaded.cuts().cuts(), model.cuts().cuts());
  EXPECT_EQ(loaded.cuts().cut_ptr(), model.cuts().cut_ptr());
  for (size_t t = 0; t < model.NumTrees(); ++t) {
    const auto& a = model.tree(t).nodes();
    const auto& b = loaded.tree(t).nodes();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].left, b[i].left);
      EXPECT_EQ(a[i].right, b[i].right);
      EXPECT_EQ(a[i].parent, b[i].parent);
      EXPECT_EQ(a[i].split_feature, b[i].split_feature);
      EXPECT_EQ(a[i].split_bin, b[i].split_bin);
      EXPECT_EQ(a[i].split_value, b[i].split_value);  // bit-exact
      EXPECT_EQ(a[i].default_left, b[i].default_left);
      EXPECT_EQ(a[i].leaf_value, b[i].leaf_value);    // bit-exact
      EXPECT_EQ(a[i].sum.g, b[i].sum.g);
      EXPECT_EQ(a[i].num_rows, b[i].num_rows);
    }
  }
}

TEST(ModelIo, ReloadedModelPredictsIdentically) {
  const GbdtModel model = TrainSmallModel();
  SyntheticSpec spec;
  spec.rows = 300;
  spec.features = 6;
  spec.density = 0.85;
  spec.seed = 702;
  const Dataset test = GenerateSynthetic(spec);

  GbdtModel loaded;
  std::string error;
  ASSERT_TRUE(DeserializeModel(SerializeModel(model), &loaded, &error));
  const auto a = model.Predict(test);
  const auto b = loaded.Predict(test);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(ModelIo, RegressionModelRoundtrips) {
  const GbdtModel model = TrainSmallModel(ObjectiveKind::kSquaredError);
  GbdtModel loaded;
  std::string error;
  ASSERT_TRUE(DeserializeModel(SerializeModel(model), &loaded, &error));
  EXPECT_EQ(loaded.objective(), ObjectiveKind::kSquaredError);
}

TEST(ModelIo, FileRoundtrip) {
  const GbdtModel model = TrainSmallModel();
  const std::string path = "/tmp/harp_model_io_test.model";
  std::string error;
  ASSERT_TRUE(SaveModel(path, model, &error)) << error;
  GbdtModel loaded;
  ASSERT_TRUE(LoadModel(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.NumTrees(), model.NumTrees());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadModel(path, &loaded, &error));
}

TEST(ModelIo, SaveLoadFlattenPredictsIdentically) {
  // save -> load -> FlatForest round-trip: the flat inference layout
  // built from a reloaded model must reproduce the original model's
  // predictions bit for bit on both input kinds.
  const GbdtModel model = TrainSmallModel();
  SyntheticSpec spec;
  spec.rows = 400;
  spec.features = 6;
  spec.density = 0.85;
  spec.seed = 703;
  const Dataset test = GenerateSynthetic(spec);
  const BinnedMatrix binned = model.BinDataset(test);

  const std::string path = "/tmp/harp_model_io_flat_test.model";
  std::string error;
  ASSERT_TRUE(SaveModel(path, model, &error)) << error;
  GbdtModel loaded;
  ASSERT_TRUE(LoadModel(path, &loaded, &error)) << error;
  std::remove(path.c_str());

  const FlatForest flat = loaded.Flatten();
  ASSERT_EQ(flat.num_trees(), model.NumTrees());
  EXPECT_EQ(flat.num_nodes(), model.TotalNodes());
  const Predictor predictor(flat);
  EXPECT_EQ(predictor.PredictMargins(binned),
            model.PredictMarginsBinned(binned));
  EXPECT_EQ(predictor.PredictMargins(test), model.PredictMargins(test));
}

GbdtModel TrainQuantileModel(double alpha) {
  SyntheticSpec spec;
  spec.rows = 800;
  spec.features = 6;
  spec.label = LabelKind::kRegression;
  spec.seed = 709;
  const Dataset train = GenerateSynthetic(spec);
  TrainParams p;
  p.num_trees = 5;
  p.tree_size = 4;
  p.num_threads = 2;
  p.objective = ObjectiveKind::kQuantile;
  p.quantile_alpha = alpha;
  p.base_score = 0.0;
  return GbdtTrainer(p).Train(train);
}

TEST(ModelIo, QuantileAlphaRoundtripsBitExact) {
  const GbdtModel model = TrainQuantileModel(0.85);
  EXPECT_EQ(model.quantile_alpha(), 0.85);
  const std::string text = SerializeModel(model);
  EXPECT_NE(text.find("quantile_alpha"), std::string::npos);
  GbdtModel loaded;
  std::string error;
  ASSERT_TRUE(DeserializeModel(text, &loaded, &error)) << error;
  EXPECT_EQ(loaded.objective(), ObjectiveKind::kQuantile);
  EXPECT_EQ(loaded.quantile_alpha(), 0.85);  // hex float: bit-exact
  // Stable fixed point with the extra line present.
  EXPECT_EQ(SerializeModel(loaded), text);
}

TEST(ModelIo, QuantileSaveLoadPredictRoundtrip) {
  const GbdtModel model = TrainQuantileModel(0.3);
  SyntheticSpec spec;
  spec.rows = 300;
  spec.features = 6;
  spec.label = LabelKind::kRegression;
  spec.seed = 710;
  const Dataset test = GenerateSynthetic(spec);
  const std::string path = "/tmp/harp_model_io_quantile_test.model";
  std::string error;
  ASSERT_TRUE(SaveModel(path, model, &error)) << error;
  GbdtModel loaded;
  ASSERT_TRUE(LoadModel(path, &loaded, &error)) << error;
  std::remove(path.c_str());
  EXPECT_EQ(loaded.quantile_alpha(), 0.3);
  // Quantile Transform is the identity: served predictions must equal
  // raw margins, bit for bit, through the save -> load round trip.
  const auto a = model.Predict(test);
  const auto b = loaded.Predict(test);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(ModelIo, NonQuantileSerializationsOmitAlphaLine) {
  // Backward compatibility hinges on only quantile models emitting the
  // optional line: every other objective's files stay byte-identical to
  // the pre-alpha format.
  EXPECT_EQ(SerializeModel(TrainSmallModel()).find("quantile_alpha"),
            std::string::npos);
  EXPECT_EQ(SerializeModel(TrainSmallModel(ObjectiveKind::kSquaredError))
                .find("quantile_alpha"),
            std::string::npos);
}

TEST(ModelIo, QuantileModelWithoutAlphaLineLoadsWithDefault) {
  // A file written before alpha persistence: strip the line; the loader
  // must fall back to alpha = 0.5 rather than reject the model.
  std::string text = SerializeModel(TrainQuantileModel(0.85));
  const size_t pos = text.find("quantile_alpha");
  ASSERT_NE(pos, std::string::npos);
  const size_t eol = text.find('\n', pos);
  text.erase(pos, eol - pos + 1);
  GbdtModel loaded;
  std::string error;
  ASSERT_TRUE(DeserializeModel(text, &loaded, &error)) << error;
  EXPECT_EQ(loaded.objective(), ObjectiveKind::kQuantile);
  EXPECT_EQ(loaded.quantile_alpha(), 0.5);
}

TEST(ModelIo, RejectsCorruptQuantileAlphaLine) {
  const std::string text = SerializeModel(TrainQuantileModel(0.85));
  const size_t pos = text.find("quantile_alpha ");
  ASSERT_NE(pos, std::string::npos);
  const size_t eol = text.find('\n', pos);
  GbdtModel out;
  std::string error;
  for (const char* bad :
       {"quantile_alpha", "quantile_alpha xyz", "quantile_alpha 0x0p+0",
        "quantile_alpha 0x1p+0", "quantile_alpha 1 2"}) {
    std::string corrupted = text;
    corrupted.replace(pos, eol - pos, bad);
    EXPECT_FALSE(DeserializeModel(corrupted, &out, &error)) << bad;
  }
}

TEST(ModelIo, RejectsMalformedInput) {
  GbdtModel out;
  std::string error;
  EXPECT_FALSE(DeserializeModel("", &out, &error));
  EXPECT_FALSE(DeserializeModel("not a model\n", &out, &error));
  EXPECT_FALSE(DeserializeModel("harpgbdt-model v1\n", &out, &error));
  EXPECT_FALSE(DeserializeModel(
      "harpgbdt-model v1\nobjective nope\n", &out, &error));
}

TEST(ModelIo, RejectsTruncatedModel) {
  const GbdtModel model = TrainSmallModel();
  const std::string text = SerializeModel(model);
  GbdtModel out;
  std::string error;
  // Chop the serialization at several points; each must fail cleanly.
  for (double frac : {0.1, 0.3, 0.6, 0.9}) {
    const std::string truncated =
        text.substr(0, static_cast<size_t>(text.size() * frac));
    EXPECT_FALSE(DeserializeModel(truncated, &out, &error)) << frac;
  }
}

TEST(ModelIo, RejectsCorruptNodeLine) {
  const GbdtModel model = TrainSmallModel();
  std::string text = SerializeModel(model);
  const size_t pos = text.find("\nnode ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 6, "\nnode X");
  GbdtModel out;
  std::string error;
  EXPECT_FALSE(DeserializeModel(text, &out, &error));
}

TEST(ModelIo, SerializationIsStable) {
  const GbdtModel model = TrainSmallModel();
  const std::string a = SerializeModel(model);
  GbdtModel loaded;
  std::string error;
  ASSERT_TRUE(DeserializeModel(a, &loaded, &error));
  // Serialize(Deserialize(x)) == x: stable fixed point.
  EXPECT_EQ(SerializeModel(loaded), a);
}

}  // namespace
}  // namespace harp
