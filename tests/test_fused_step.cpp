// Fused-step execution layer: PhaseBarrier and ThreadPool::FusedRegion
// primitives, then the grow scheduler built on them — the fused path must
// produce bit-identical trees to the region-per-phase oracle across
// DP/MP/SYNC x subtraction x thread count, while collapsing the region
// count to exactly one launch per TopK batch.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/tree_builder.h"
#include "parallel/phase_barrier.h"
#include "parallel/thread_pool.h"
#include "test_util.h"

namespace harp {
namespace {

using harp::testing::MakeDataset;
using harp::testing::MakeGradients;
using harp::testing::TreesEqual;

// ---------- PhaseBarrier ----------

TEST(PhaseBarrier, LastArrivalRunsEpilogueOncePerPhase) {
  constexpr int kThreads = 4;
  constexpr int kPhases = 100;
  PhaseBarrier barrier(kThreads);
  std::atomic<int> epilogues{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int p = 0; p < kPhases; ++p) {
        const bool released =
            barrier.Wait([&] { epilogues.fetch_add(1); });
        if (!released) mismatches.fetch_add(1);
        // The epilogue of phase p has run exactly p+1 times by the time
        // any thread is released from phase p.
        if (epilogues.load() < p + 1) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(epilogues.load(), kPhases);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(PhaseBarrier, EpilogueWritesHappenBeforeRelease) {
  constexpr int kThreads = 4;
  constexpr int kPhases = 200;
  PhaseBarrier barrier(kThreads);
  int shared = 0;  // plain int: the barrier must order all accesses
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int p = 0; p < kPhases; ++p) {
        barrier.Wait([&] { shared = p + 1; });
        if (shared != p + 1) errors.fetch_add(1);
        barrier.Wait();  // nobody advances shared until all have read it
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(shared, kPhases);
}

TEST(PhaseBarrier, AbortReleasesWaitersWithFalse) {
  PhaseBarrier barrier(2);
  std::atomic<bool> released_false{false};
  std::thread waiter([&] {
    // Never joined by a second arrival; only Abort can release this.
    released_false.store(!barrier.Wait());
  });
  barrier.Abort();
  waiter.join();
  EXPECT_TRUE(released_false.load());
  EXPECT_TRUE(barrier.aborted());
}

// ---------- FusedRegion ----------

TEST(FusedRegion, PhasedDynamicWorkAndEpilogues) {
  ThreadPool pool(4);
  ThreadPool::FusedRegion region(pool);
  constexpr int64_t kN1 = 1000;
  constexpr int64_t kN2 = 357;
  std::atomic<int64_t> sum{0};
  int64_t phase1_total = 0;  // written in epilogue, read by all threads
  std::atomic<int> errors{0};

  region.Run([&](int thread_id) {
    region.ForDynamic(thread_id, kN1, 7,
                      [&](int64_t begin, int64_t end, int) {
                        for (int64_t i = begin; i < end; ++i) {
                          sum.fetch_add(i, std::memory_order_relaxed);
                        }
                      });
    region.Barrier(thread_id, [&] { phase1_total = sum.load(); });
    if (phase1_total != kN1 * (kN1 - 1) / 2) errors.fetch_add(1);
    // Second dynamic loop in the next barrier window: the cursor was
    // reset by the barrier, so both loops see the full range.
    region.ForDynamic(thread_id, kN2, 1,
                      [&](int64_t begin, int64_t end, int) {
                        for (int64_t i = begin; i < end; ++i) {
                          sum.fetch_add(1, std::memory_order_relaxed);
                        }
                      });
    region.Barrier(thread_id);
  });

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(sum.load(), kN1 * (kN1 - 1) / 2 + kN2);
}

TEST(FusedRegion, ForStaticCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  ThreadPool::FusedRegion region(pool);
  constexpr int64_t kN = 1001;  // not a multiple of the thread count
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  region.Run([&](int thread_id) {
    region.ForStatic(thread_id, kN, [&](int64_t begin, int64_t end, int) {
      for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    region.Barrier(thread_id);
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(FusedRegion, WorksOnSingleThreadPool) {
  ThreadPool pool(1);
  ThreadPool::FusedRegion region(pool);
  int64_t sum = 0;
  region.Run([&](int thread_id) {
    region.ForDynamic(thread_id, 100, 9,
                      [&](int64_t begin, int64_t end, int) {
                        sum += end - begin;
                      });
    region.Barrier(thread_id, [&] { sum *= 2; });
    region.ForStatic(thread_id, 10,
                     [&](int64_t begin, int64_t end, int) {
                       sum += end - begin;
                     });
    region.Barrier(thread_id);
  });
  EXPECT_EQ(sum, 210);
}

TEST(FusedRegion, BodyExceptionPropagatesAndReleasesPeers) {
  ThreadPool pool(4);
  ThreadPool::FusedRegion region(pool);
  EXPECT_THROW(
      region.Run([&](int thread_id) {
        if (thread_id == 1) throw std::runtime_error("boom");
        // Peers park at a barrier the thrower never reaches; the abort
        // must release them instead of deadlocking.
        region.Barrier(thread_id);
        region.ForDynamic(thread_id, 1 << 20, 1,
                          [&](int64_t, int64_t, int) {});
        region.Barrier(thread_id);
      }),
      std::runtime_error);
}

TEST(FusedRegion, EpilogueExceptionPropagates) {
  ThreadPool pool(4);
  ThreadPool::FusedRegion region(pool);
  std::atomic<int> after_barrier{0};
  EXPECT_THROW(
      region.Run([&](int thread_id) {
        region.Barrier(thread_id,
                       [] { throw std::runtime_error("epilogue boom"); });
        after_barrier.fetch_add(1);  // must be unreachable on every thread
      }),
      std::runtime_error);
  EXPECT_EQ(after_barrier.load(), 0);
}

TEST(FusedRegion, CountsOneRegionAndPerPhaseBarriers) {
  ThreadPool pool(4);
  pool.ResetStats();
  const SyncSnapshot before = pool.Snapshot();
  ThreadPool::FusedRegion region(pool);
  region.Run([&](int thread_id) {
    region.Barrier(thread_id);
    region.Barrier(thread_id);
    region.Barrier(thread_id);
  });
  const SyncSnapshot after = pool.Snapshot();
  EXPECT_EQ(after.parallel_regions - before.parallel_regions, 1);
  EXPECT_EQ(after.phase_barriers - before.phase_barriers, 3);
}

// ---------- fused grow path vs. region-per-phase oracle ----------

struct Env {
  Dataset ds;
  BinnedMatrix matrix;
  std::vector<GradientPair> gh;
};

Env MakeEnv(uint32_t rows, uint32_t features = 9, uint64_t seed = 7) {
  Dataset ds = MakeDataset(rows, features, 0.85, seed, /*distinct=*/24);
  BinnedMatrix matrix = BinnedMatrix::Build(ds, QuantileCuts::Compute(ds, 24));
  auto gh = MakeGradients(rows, seed + 1);
  return Env{std::move(ds), std::move(matrix), std::move(gh)};
}

RegTree BuildWith(const Env& env, TrainParams params, int threads,
                  TrainStats* stats) {
  params.num_threads = threads;
  ThreadPool pool(threads);
  HarpTreeBuilder builder(env.matrix, params, pool);
  return builder.BuildTree(env.gh, stats);
}

TEST(FusedStep, BitIdenticalToRegionPerPhase) {
  const Env env = MakeEnv(3000);
  for (ParallelMode mode :
       {ParallelMode::kDP, ParallelMode::kMP, ParallelMode::kSYNC}) {
    for (bool subtraction : {false, true}) {
      for (int threads : {1, 4}) {
        TrainParams p;
        p.grow_policy = GrowPolicy::kTopK;
        p.topk = 4;
        p.tree_size = 6;
        p.min_split_loss = 0.0;
        p.min_child_weight = 0.1;
        p.mode = mode;
        p.use_hist_subtraction = subtraction;
        p.node_blk_size = 2;
        p.feature_blk_size = 4;

        p.use_fused_step = false;
        TrainStats oracle_stats;
        const RegTree oracle = BuildWith(env, p, threads, &oracle_stats);

        p.use_fused_step = true;
        TrainStats fused_stats;
        const RegTree fused = BuildWith(env, p, threads, &fused_stats);

        const std::string label =
            "mode=" + ToString(mode) +
            " sub=" + std::to_string(subtraction) +
            " threads=" + std::to_string(threads);
        EXPECT_TRUE(TreesEqual(oracle, fused)) << label;
        EXPECT_GT(oracle.num_nodes(), 5) << label;
        // Same trees means the same grow steps on both schedulers.
        EXPECT_EQ(oracle_stats.topk_batches, fused_stats.topk_batches)
            << label;
      }
    }
  }
}

TEST(FusedStep, OneRegionLaunchPerTopKBatch) {
  // Depth-8 SYNC run (the acceptance scenario): with the fused scheduler
  // the grow loop must launch EXACTLY one parallel region per TopK batch;
  // the region-per-phase oracle launches several and records zero phase
  // barriers.
  const Env env = MakeEnv(20000, 10, 11);
  TrainParams p;
  p.grow_policy = GrowPolicy::kTopK;
  p.topk = 8;
  p.tree_size = 8;
  p.min_split_loss = 0.0;
  p.min_child_weight = 0.1;
  p.mode = ParallelMode::kSYNC;

  p.use_fused_step = true;
  TrainStats fused;
  const RegTree fused_tree = BuildWith(env, p, 4, &fused);
  ASSERT_GT(fused.topk_batches, 3);
  EXPECT_EQ(fused.grow_region_launches, fused.topk_batches);
  EXPECT_GT(fused.grow_phase_barriers, fused.topk_batches);

  p.use_fused_step = false;
  TrainStats oracle;
  const RegTree oracle_tree = BuildWith(env, p, 4, &oracle);
  EXPECT_TRUE(TreesEqual(oracle_tree, fused_tree));
  EXPECT_EQ(oracle.topk_batches, fused.topk_batches);
  EXPECT_EQ(oracle.grow_phase_barriers, 0);
  EXPECT_GT(oracle.grow_region_launches, 3 * oracle.topk_batches);
}

TEST(FusedStep, SteadyStateScratchStopsGrowing) {
  // After a warm-up tree the builder's per-step scratch must be at its
  // working-set high-water mark: growing further identical trees must not
  // change any scratch capacity (the builder-side zero-alloc guarantee;
  // the partitioner-side one lives in test_row_partitioner).
  const Env env = MakeEnv(20000, 10, 13);
  for (bool fused : {true, false}) {
    TrainParams p;
    p.grow_policy = GrowPolicy::kTopK;
    p.topk = 8;
    p.tree_size = 7;
    p.min_split_loss = 0.0;
    p.min_child_weight = 0.1;
    p.mode = ParallelMode::kSYNC;
    p.use_hist_subtraction = true;
    p.use_fused_step = fused;
    p.num_threads = 4;

    ThreadPool pool(4);
    HarpTreeBuilder builder(env.matrix, p, pool);
    TrainStats stats;
    builder.BuildTree(env.gh, &stats);  // warm-up
    const int64_t warm = builder.scratch_grow_events();
    for (int t = 0; t < 3; ++t) builder.BuildTree(env.gh, &stats);
    EXPECT_EQ(builder.scratch_grow_events(), warm)
        << "fused=" << fused
        << ": steady-state grow steps must not grow scratch";
  }
}

}  // namespace
}  // namespace harp
