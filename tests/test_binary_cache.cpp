// Tests for the binary dataset cache.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/binary_cache.h"
#include "data/synthetic.h"

namespace harp {
namespace {

void ExpectDatasetsEqual(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_features(), b.num_features());
  ASSERT_EQ(a.layout(), b.layout());
  EXPECT_EQ(a.labels(), b.labels());
  for (uint32_t r = 0; r < a.num_rows(); ++r) {
    for (uint32_t f = 0; f < a.num_features(); ++f) {
      const float x = a.At(r, f);
      const float y = b.At(r, f);
      ASSERT_TRUE((IsMissing(x) && IsMissing(y)) || x == y)
          << "mismatch at " << r << "," << f;
    }
  }
}

TEST(BinaryCache, DenseRoundtrip) {
  SyntheticSpec spec;
  spec.rows = 500;
  spec.features = 12;
  spec.density = 0.9;
  const Dataset original = GenerateSynthetic(spec);

  const std::string path = "/tmp/harp_cache_dense.bin";
  std::string error;
  ASSERT_TRUE(WriteDatasetCache(path, original, &error)) << error;
  Dataset loaded;
  ASSERT_TRUE(ReadDatasetCache(path, &loaded, &error)) << error;
  ExpectDatasetsEqual(original, loaded);
  std::remove(path.c_str());
}

TEST(BinaryCache, SparseRoundtrip) {
  SyntheticSpec spec;
  spec.rows = 400;
  spec.features = 40;
  spec.density = 0.2;
  spec.sparse_storage = true;
  const Dataset original = GenerateSynthetic(spec);
  ASSERT_EQ(original.layout(), Dataset::Layout::kSparse);

  const std::string path = "/tmp/harp_cache_sparse.bin";
  std::string error;
  ASSERT_TRUE(WriteDatasetCache(path, original, &error)) << error;
  Dataset loaded;
  ASSERT_TRUE(ReadDatasetCache(path, &loaded, &error)) << error;
  ExpectDatasetsEqual(original, loaded);
  std::remove(path.c_str());
}

TEST(BinaryCache, GroupedRoundtripKeepsGroupPtr) {
  RankingSpec spec;
  spec.num_queries = 30;
  const Dataset original = GenerateRankingSynthetic(spec);
  ASSERT_TRUE(original.has_groups());

  const std::string path = "/tmp/harp_cache_grouped.bin";
  std::string error;
  ASSERT_TRUE(WriteDatasetCache(path, original, &error)) << error;
  Dataset loaded;
  ASSERT_TRUE(ReadDatasetCache(path, &loaded, &error)) << error;
  ExpectDatasetsEqual(original, loaded);
  ASSERT_TRUE(loaded.has_groups());
  EXPECT_EQ(loaded.group_ptr(), original.group_ptr());
  std::remove(path.c_str());
}

TEST(BinaryCache, UngroupedFileIsByteIdenticalToPreGroupFormat) {
  // The group section is optional-trailing: writing an ungrouped dataset
  // must produce exactly the bytes the pre-group writer produced (no
  // empty section marker), so existing caches stay valid and freshly
  // written ungrouped caches load anywhere.
  SyntheticSpec spec;
  spec.rows = 120;
  spec.features = 5;
  const Dataset ungrouped = GenerateSynthetic(spec);
  const std::string path = "/tmp/harp_cache_nogroups.bin";
  std::string error;
  ASSERT_TRUE(WriteDatasetCache(path, ungrouped, &error)) << error;

  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::remove(path.c_str());
  // Layout: header (17) + labels section + values section + checksum (8).
  const size_t expected = 17 + (8 + spec.rows * 4) +
                          (8 + size_t{spec.rows} * spec.features * 4) + 8;
  EXPECT_EQ(content.size(), expected);
  Dataset loaded;
  const std::string path2 = "/tmp/harp_cache_nogroups2.bin";
  {
    std::ofstream out(path2, std::ios::binary);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
  }
  ASSERT_TRUE(ReadDatasetCache(path2, &loaded, &error)) << error;
  EXPECT_FALSE(loaded.has_groups());
  std::remove(path2.c_str());
}

TEST(BinaryCache, CorruptGroupSectionRejected) {
  RankingSpec spec;
  spec.num_queries = 10;
  const Dataset original = GenerateRankingSynthetic(spec);
  const std::string path = "/tmp/harp_cache_badgroups.bin";
  std::string error;
  ASSERT_TRUE(WriteDatasetCache(path, original, &error)) << error;

  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  // Flip a byte inside the trailing group section (just before the
  // checksum): the checksum must cover the optional section too.
  content[content.size() - 12] ^= 0xFF;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
  }
  Dataset ds;
  EXPECT_FALSE(ReadDatasetCache(path, &ds, &error));
  std::remove(path.c_str());
}

TEST(BinaryCache, MissingFileFails) {
  Dataset ds;
  std::string error;
  EXPECT_FALSE(ReadDatasetCache("/tmp/does_not_exist_harp.bin", &ds, &error));
  EXPECT_FALSE(error.empty());
}

TEST(BinaryCache, CorruptHeaderRejected) {
  const std::string path = "/tmp/harp_cache_corrupt.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a harp cache file at all";
  }
  Dataset ds;
  std::string error;
  EXPECT_FALSE(ReadDatasetCache(path, &ds, &error));
  std::remove(path.c_str());
}

TEST(BinaryCache, TruncatedFileRejected) {
  SyntheticSpec spec;
  spec.rows = 200;
  spec.features = 8;
  const Dataset original = GenerateSynthetic(spec);
  const std::string path = "/tmp/harp_cache_trunc.bin";
  std::string error;
  ASSERT_TRUE(WriteDatasetCache(path, original, &error)) << error;

  // Truncate to half.
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size() / 2));
  }
  Dataset ds;
  EXPECT_FALSE(ReadDatasetCache(path, &ds, &error));
  std::remove(path.c_str());
}

TEST(BinaryCache, ChecksumFlipRejected) {
  SyntheticSpec spec;
  spec.rows = 300;
  spec.features = 6;
  const Dataset original = GenerateSynthetic(spec);
  const std::string path = "/tmp/harp_cache_bitflip.bin";
  std::string error;
  ASSERT_TRUE(WriteDatasetCache(path, original, &error)) << error;

  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  // Flip one payload bit in the middle of the value section.
  content[content.size() / 2] ^= 0x04;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
  }
  Dataset ds;
  EXPECT_FALSE(ReadDatasetCache(path, &ds, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  EXPECT_NE(error.find("re-generate"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(BinaryCache, TrailingGarbageRejected) {
  SyntheticSpec spec;
  spec.rows = 100;
  spec.features = 4;
  const Dataset original = GenerateSynthetic(spec);
  const std::string path = "/tmp/harp_cache_garbage.bin";
  std::string error;
  ASSERT_TRUE(WriteDatasetCache(path, original, &error)) << error;
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "extra bytes after the footer";
  }
  Dataset ds;
  EXPECT_FALSE(ReadDatasetCache(path, &ds, &error));
  std::remove(path.c_str());
}

TEST(BinaryCache, V1FormatRejectedWithRegenerateHint) {
  const std::string path = "/tmp/harp_cache_v1.bin";
  {
    const uint64_t v1_magic = 0x48415250474231ULL;  // "HARPGB1"
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(&v1_magic), sizeof(v1_magic));
    const std::string padding(64, '\0');
    out.write(padding.data(), static_cast<std::streamsize>(padding.size()));
  }
  Dataset ds;
  std::string error;
  EXPECT_FALSE(ReadDatasetCache(path, &ds, &error));
  EXPECT_NE(error.find("v1"), std::string::npos) << error;
  EXPECT_NE(error.find("re-generate"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(BinaryCache, UnwritablePathFails) {
  SyntheticSpec spec;
  spec.rows = 10;
  spec.features = 2;
  const Dataset ds = GenerateSynthetic(spec);
  std::string error;
  EXPECT_FALSE(
      WriteDatasetCache("/nonexistent_dir/x.bin", ds, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace harp
