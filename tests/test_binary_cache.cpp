// Tests for the binary dataset cache.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/binary_cache.h"
#include "data/synthetic.h"

namespace harp {
namespace {

void ExpectDatasetsEqual(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_features(), b.num_features());
  ASSERT_EQ(a.layout(), b.layout());
  EXPECT_EQ(a.labels(), b.labels());
  for (uint32_t r = 0; r < a.num_rows(); ++r) {
    for (uint32_t f = 0; f < a.num_features(); ++f) {
      const float x = a.At(r, f);
      const float y = b.At(r, f);
      ASSERT_TRUE((IsMissing(x) && IsMissing(y)) || x == y)
          << "mismatch at " << r << "," << f;
    }
  }
}

TEST(BinaryCache, DenseRoundtrip) {
  SyntheticSpec spec;
  spec.rows = 500;
  spec.features = 12;
  spec.density = 0.9;
  const Dataset original = GenerateSynthetic(spec);

  const std::string path = "/tmp/harp_cache_dense.bin";
  std::string error;
  ASSERT_TRUE(WriteDatasetCache(path, original, &error)) << error;
  Dataset loaded;
  ASSERT_TRUE(ReadDatasetCache(path, &loaded, &error)) << error;
  ExpectDatasetsEqual(original, loaded);
  std::remove(path.c_str());
}

TEST(BinaryCache, SparseRoundtrip) {
  SyntheticSpec spec;
  spec.rows = 400;
  spec.features = 40;
  spec.density = 0.2;
  spec.sparse_storage = true;
  const Dataset original = GenerateSynthetic(spec);
  ASSERT_EQ(original.layout(), Dataset::Layout::kSparse);

  const std::string path = "/tmp/harp_cache_sparse.bin";
  std::string error;
  ASSERT_TRUE(WriteDatasetCache(path, original, &error)) << error;
  Dataset loaded;
  ASSERT_TRUE(ReadDatasetCache(path, &loaded, &error)) << error;
  ExpectDatasetsEqual(original, loaded);
  std::remove(path.c_str());
}

TEST(BinaryCache, MissingFileFails) {
  Dataset ds;
  std::string error;
  EXPECT_FALSE(ReadDatasetCache("/tmp/does_not_exist_harp.bin", &ds, &error));
  EXPECT_FALSE(error.empty());
}

TEST(BinaryCache, CorruptHeaderRejected) {
  const std::string path = "/tmp/harp_cache_corrupt.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a harp cache file at all";
  }
  Dataset ds;
  std::string error;
  EXPECT_FALSE(ReadDatasetCache(path, &ds, &error));
  std::remove(path.c_str());
}

TEST(BinaryCache, TruncatedFileRejected) {
  SyntheticSpec spec;
  spec.rows = 200;
  spec.features = 8;
  const Dataset original = GenerateSynthetic(spec);
  const std::string path = "/tmp/harp_cache_trunc.bin";
  std::string error;
  ASSERT_TRUE(WriteDatasetCache(path, original, &error)) << error;

  // Truncate to half.
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size() / 2));
  }
  Dataset ds;
  EXPECT_FALSE(ReadDatasetCache(path, &ds, &error));
  std::remove(path.c_str());
}

TEST(BinaryCache, UnwritablePathFails) {
  SyntheticSpec spec;
  spec.rows = 10;
  spec.features = 2;
  const Dataset ds = GenerateSynthetic(spec);
  std::string error;
  EXPECT_FALSE(
      WriteDatasetCache("/nonexistent_dir/x.bin", ds, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace harp
