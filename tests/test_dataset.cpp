// Unit tests for the Dataset representation (dense + CSR).
#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.h"

namespace harp {
namespace {

Dataset SmallDense() {
  // 3 rows x 2 features with one missing entry.
  return Dataset::FromDense(3, 2,
                            {1.0f, 2.0f,
                             kMissingValue, 4.0f,
                             5.0f, 6.0f},
                            {0.0f, 1.0f, 0.0f});
}

Dataset SmallSparse() {
  // Same logical content as SmallDense, CSR layout.
  return Dataset::FromCsr(
      3, 2, {0, 2, 3, 5},
      {{0, 1.0f}, {1, 2.0f}, {1, 4.0f}, {0, 5.0f}, {1, 6.0f}},
      {0.0f, 1.0f, 0.0f});
}

TEST(Dataset, DenseAt) {
  const Dataset ds = SmallDense();
  EXPECT_FLOAT_EQ(ds.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(ds.At(2, 1), 6.0f);
  EXPECT_TRUE(IsMissing(ds.At(1, 0)));
}

TEST(Dataset, SparseAt) {
  const Dataset ds = SmallSparse();
  EXPECT_FLOAT_EQ(ds.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(ds.At(1, 1), 4.0f);
  EXPECT_TRUE(IsMissing(ds.At(1, 0)));
  EXPECT_FLOAT_EQ(ds.At(2, 0), 5.0f);
}

TEST(Dataset, DenseAndSparseAgreeEverywhere) {
  const Dataset dense = SmallDense();
  const Dataset sparse = SmallSparse();
  for (uint32_t r = 0; r < 3; ++r) {
    for (uint32_t f = 0; f < 2; ++f) {
      const float a = dense.At(r, f);
      const float b = sparse.At(r, f);
      EXPECT_EQ(IsMissing(a), IsMissing(b));
      if (!IsMissing(a)) {
        EXPECT_FLOAT_EQ(a, b);
      }
    }
  }
}

TEST(Dataset, SparsenessCountsPresent) {
  EXPECT_NEAR(SmallDense().Sparseness(), 5.0 / 6.0, 1e-12);
  EXPECT_NEAR(SmallSparse().Sparseness(), 5.0 / 6.0, 1e-12);
  EXPECT_EQ(SmallDense().NumPresent(), 5u);
}

TEST(Dataset, ForEachInRowVisitsPresentInOrder) {
  for (const Dataset& ds : {SmallDense(), SmallSparse()}) {
    std::vector<std::pair<uint32_t, float>> visited;
    ds.ForEachInRow(1, [&](uint32_t f, float v) { visited.emplace_back(f, v); });
    ASSERT_EQ(visited.size(), 1u);
    EXPECT_EQ(visited[0].first, 1u);
    EXPECT_FLOAT_EQ(visited[0].second, 4.0f);
  }
}

TEST(Dataset, SliceDense) {
  const Dataset ds = SmallDense();
  const Dataset slice = ds.Slice(1, 3);
  EXPECT_EQ(slice.num_rows(), 2u);
  EXPECT_EQ(slice.num_features(), 2u);
  EXPECT_TRUE(IsMissing(slice.At(0, 0)));
  EXPECT_FLOAT_EQ(slice.At(1, 1), 6.0f);
  EXPECT_FLOAT_EQ(slice.labels()[0], 1.0f);
}

TEST(Dataset, SliceSparse) {
  const Dataset ds = SmallSparse();
  const Dataset slice = ds.Slice(1, 3);
  EXPECT_EQ(slice.num_rows(), 2u);
  EXPECT_FLOAT_EQ(slice.At(0, 1), 4.0f);
  EXPECT_TRUE(IsMissing(slice.At(0, 0)));
  EXPECT_FLOAT_EQ(slice.At(1, 0), 5.0f);
}

TEST(Dataset, SliceEmpty) {
  const Dataset slice = SmallDense().Slice(1, 1);
  EXPECT_EQ(slice.num_rows(), 0u);
}

TEST(Dataset, ConcatRowsDense) {
  const Dataset ds = SmallDense();
  const Dataset doubled = ds.ConcatRows(ds);
  EXPECT_EQ(doubled.num_rows(), 6u);
  for (uint32_t r = 0; r < 3; ++r) {
    for (uint32_t f = 0; f < 2; ++f) {
      const float a = doubled.At(r, f);
      const float b = doubled.At(r + 3, f);
      EXPECT_EQ(IsMissing(a), IsMissing(b));
      if (!IsMissing(a)) {
        EXPECT_FLOAT_EQ(a, b);
      }
    }
  }
  EXPECT_EQ(doubled.labels().size(), 6u);
}

TEST(Dataset, ConcatRowsSparse) {
  const Dataset ds = SmallSparse();
  const Dataset doubled = ds.ConcatRows(ds);
  EXPECT_EQ(doubled.num_rows(), 6u);
  EXPECT_EQ(doubled.NumPresent(), 2 * ds.NumPresent());
  EXPECT_FLOAT_EQ(doubled.At(4, 1), 4.0f);
}

// ---------- query groups ----------

Dataset GroupedDense() {
  // 6 rows in 3 queries of sizes 2, 3, 1.
  Dataset ds = Dataset::FromDense(
      6, 1, {1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f},
      {0.0f, 1.0f, 0.0f, 1.0f, 2.0f, 0.0f});
  ds.SetGroupPtr({0, 2, 5, 6});
  return ds;
}

TEST(Dataset, GroupPtrAccessors) {
  const Dataset ds = GroupedDense();
  ASSERT_TRUE(ds.has_groups());
  EXPECT_EQ(ds.num_groups(), 3u);
  EXPECT_EQ(ds.group_ptr(), (std::vector<uint32_t>{0, 2, 5, 6}));
  EXPECT_FALSE(SmallDense().has_groups());
  EXPECT_EQ(SmallDense().num_groups(), 0u);
}

TEST(Dataset, SetGroupPtrEmptyClears) {
  Dataset ds = GroupedDense();
  ds.SetGroupPtr({});
  EXPECT_FALSE(ds.has_groups());
}

TEST(Dataset, SliceOnGroupBoundariesKeepsWholeGroups) {
  const Dataset ds = GroupedDense();
  const Dataset head = ds.Slice(0, 2);
  ASSERT_TRUE(head.has_groups());
  EXPECT_EQ(head.group_ptr(), (std::vector<uint32_t>{0, 2}));
  const Dataset tail = ds.Slice(2, 6);
  ASSERT_TRUE(tail.has_groups());
  EXPECT_EQ(tail.group_ptr(), (std::vector<uint32_t>{0, 3, 4}));
}

TEST(Dataset, SliceInsideAGroupClampsBoundaries) {
  const Dataset ds = GroupedDense();
  // Rows [1, 4): splits query 1 and truncates query 2 — the slice keeps
  // valid group structure with the cut groups clamped to the window.
  const Dataset mid = ds.Slice(1, 4);
  ASSERT_TRUE(mid.has_groups());
  EXPECT_EQ(mid.group_ptr(), (std::vector<uint32_t>{0, 1, 3}));
}

TEST(Dataset, SliceOfUngroupedStaysUngrouped) {
  EXPECT_FALSE(SmallDense().Slice(0, 2).has_groups());
}

TEST(Dataset, ConcatRowsShiftsGroupBoundaries) {
  const Dataset ds = GroupedDense();
  const Dataset doubled = ds.ConcatRows(ds);
  ASSERT_TRUE(doubled.has_groups());
  EXPECT_EQ(doubled.group_ptr(),
            (std::vector<uint32_t>{0, 2, 5, 6, 8, 11, 12}));
  // Ungrouped + ungrouped stays ungrouped.
  EXPECT_FALSE(SmallDense().ConcatRows(SmallDense()).has_groups());
}

TEST(DatasetDeath, ConcatRowsRejectsMixedGroupedness) {
  Dataset grouped = GroupedDense();
  Dataset plain = Dataset::FromDense(
      2, 1, {1.0f, 2.0f}, {0.0f, 1.0f});
  EXPECT_DEATH(grouped.ConcatRows(plain), "CHECK");
  EXPECT_DEATH(plain.ConcatRows(grouped), "CHECK");
}

TEST(DatasetDeath, SetGroupPtrRejectsInvalidBoundaries) {
  Dataset ds = SmallDense();  // 3 rows
  EXPECT_DEATH(ds.SetGroupPtr({0}), "CHECK");            // too short
  EXPECT_DEATH(ds.SetGroupPtr({1, 3}), "CHECK");         // front != 0
  EXPECT_DEATH(ds.SetGroupPtr({0, 2}), "CHECK");         // back != rows
  EXPECT_DEATH(ds.SetGroupPtr({0, 2, 2, 3}), "CHECK");   // not increasing
}

TEST(DatasetDeath, MismatchedSizesRejected) {
  EXPECT_DEATH(Dataset::FromDense(2, 2, {1.0f, 2.0f}, {0.0f, 1.0f}), "CHECK");
  EXPECT_DEATH(Dataset::FromDense(1, 1, {1.0f}, {0.0f, 1.0f}), "CHECK");
}

TEST(DatasetDeath, CsrRequiresIncreasingFeatures) {
  EXPECT_DEATH(Dataset::FromCsr(1, 3, {0, 2}, {{1, 1.0f}, {1, 2.0f}},
                                {0.0f}),
               "CHECK");
  EXPECT_DEATH(Dataset::FromCsr(1, 2, {0, 1}, {{5, 1.0f}}, {0.0f}), "CHECK");
}

}  // namespace
}  // namespace harp
