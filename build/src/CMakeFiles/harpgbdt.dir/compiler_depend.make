# Empty compiler generated dependencies file for harpgbdt.
# This may be replaced when dependencies are built.
