file(REMOVE_RECURSE
  "libharpgbdt.a"
)
