
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/lightgbm_like.cpp" "src/CMakeFiles/harpgbdt.dir/baselines/lightgbm_like.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/baselines/lightgbm_like.cpp.o.d"
  "/root/repo/src/baselines/xgb_approx.cpp" "src/CMakeFiles/harpgbdt.dir/baselines/xgb_approx.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/baselines/xgb_approx.cpp.o.d"
  "/root/repo/src/baselines/xgb_hist.cpp" "src/CMakeFiles/harpgbdt.dir/baselines/xgb_hist.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/baselines/xgb_hist.cpp.o.d"
  "/root/repo/src/common/env.cpp" "src/CMakeFiles/harpgbdt.dir/common/env.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/common/env.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/harpgbdt.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/harpgbdt.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/string_util.cpp" "src/CMakeFiles/harpgbdt.dir/common/string_util.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/common/string_util.cpp.o.d"
  "/root/repo/src/core/async_builder.cpp" "src/CMakeFiles/harpgbdt.dir/core/async_builder.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/core/async_builder.cpp.o.d"
  "/root/repo/src/core/gbdt.cpp" "src/CMakeFiles/harpgbdt.dir/core/gbdt.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/core/gbdt.cpp.o.d"
  "/root/repo/src/core/grow_policy.cpp" "src/CMakeFiles/harpgbdt.dir/core/grow_policy.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/core/grow_policy.cpp.o.d"
  "/root/repo/src/core/hist_builder_dp.cpp" "src/CMakeFiles/harpgbdt.dir/core/hist_builder_dp.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/core/hist_builder_dp.cpp.o.d"
  "/root/repo/src/core/hist_builder_mp.cpp" "src/CMakeFiles/harpgbdt.dir/core/hist_builder_mp.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/core/hist_builder_mp.cpp.o.d"
  "/root/repo/src/core/histogram.cpp" "src/CMakeFiles/harpgbdt.dir/core/histogram.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/core/histogram.cpp.o.d"
  "/root/repo/src/core/importance.cpp" "src/CMakeFiles/harpgbdt.dir/core/importance.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/core/importance.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/harpgbdt.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/CMakeFiles/harpgbdt.dir/core/model.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/core/model.cpp.o.d"
  "/root/repo/src/core/model_io.cpp" "src/CMakeFiles/harpgbdt.dir/core/model_io.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/core/model_io.cpp.o.d"
  "/root/repo/src/core/multiclass.cpp" "src/CMakeFiles/harpgbdt.dir/core/multiclass.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/core/multiclass.cpp.o.d"
  "/root/repo/src/core/objective.cpp" "src/CMakeFiles/harpgbdt.dir/core/objective.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/core/objective.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/CMakeFiles/harpgbdt.dir/core/params.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/core/params.cpp.o.d"
  "/root/repo/src/core/row_partitioner.cpp" "src/CMakeFiles/harpgbdt.dir/core/row_partitioner.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/core/row_partitioner.cpp.o.d"
  "/root/repo/src/core/split_evaluator.cpp" "src/CMakeFiles/harpgbdt.dir/core/split_evaluator.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/core/split_evaluator.cpp.o.d"
  "/root/repo/src/core/train_stats.cpp" "src/CMakeFiles/harpgbdt.dir/core/train_stats.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/core/train_stats.cpp.o.d"
  "/root/repo/src/core/tree.cpp" "src/CMakeFiles/harpgbdt.dir/core/tree.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/core/tree.cpp.o.d"
  "/root/repo/src/core/tree_builder.cpp" "src/CMakeFiles/harpgbdt.dir/core/tree_builder.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/core/tree_builder.cpp.o.d"
  "/root/repo/src/data/binary_cache.cpp" "src/CMakeFiles/harpgbdt.dir/data/binary_cache.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/data/binary_cache.cpp.o.d"
  "/root/repo/src/data/binned_matrix.cpp" "src/CMakeFiles/harpgbdt.dir/data/binned_matrix.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/data/binned_matrix.cpp.o.d"
  "/root/repo/src/data/csv_reader.cpp" "src/CMakeFiles/harpgbdt.dir/data/csv_reader.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/data/csv_reader.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/harpgbdt.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/dataset_stats.cpp" "src/CMakeFiles/harpgbdt.dir/data/dataset_stats.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/data/dataset_stats.cpp.o.d"
  "/root/repo/src/data/libsvm_reader.cpp" "src/CMakeFiles/harpgbdt.dir/data/libsvm_reader.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/data/libsvm_reader.cpp.o.d"
  "/root/repo/src/data/quantile.cpp" "src/CMakeFiles/harpgbdt.dir/data/quantile.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/data/quantile.cpp.o.d"
  "/root/repo/src/data/quantile_sketch.cpp" "src/CMakeFiles/harpgbdt.dir/data/quantile_sketch.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/data/quantile_sketch.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/CMakeFiles/harpgbdt.dir/data/synthetic.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/data/synthetic.cpp.o.d"
  "/root/repo/src/distributed/communicator.cpp" "src/CMakeFiles/harpgbdt.dir/distributed/communicator.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/distributed/communicator.cpp.o.d"
  "/root/repo/src/distributed/dist_gbdt.cpp" "src/CMakeFiles/harpgbdt.dir/distributed/dist_gbdt.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/distributed/dist_gbdt.cpp.o.d"
  "/root/repo/src/parallel/sync_stats.cpp" "src/CMakeFiles/harpgbdt.dir/parallel/sync_stats.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/parallel/sync_stats.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "src/CMakeFiles/harpgbdt.dir/parallel/thread_pool.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/parallel/thread_pool.cpp.o.d"
  "/root/repo/src/parallel/work_queue.cpp" "src/CMakeFiles/harpgbdt.dir/parallel/work_queue.cpp.o" "gcc" "src/CMakeFiles/harpgbdt.dir/parallel/work_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
