# Empty dependencies file for test_binary_cache.
# This may be replaced when dependencies are built.
