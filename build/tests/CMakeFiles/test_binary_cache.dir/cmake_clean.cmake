file(REMOVE_RECURSE
  "CMakeFiles/test_binary_cache.dir/test_binary_cache.cpp.o"
  "CMakeFiles/test_binary_cache.dir/test_binary_cache.cpp.o.d"
  "test_binary_cache"
  "test_binary_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_binary_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
