file(REMOVE_RECURSE
  "CMakeFiles/test_split_evaluator.dir/test_split_evaluator.cpp.o"
  "CMakeFiles/test_split_evaluator.dir/test_split_evaluator.cpp.o.d"
  "test_split_evaluator"
  "test_split_evaluator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_split_evaluator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
