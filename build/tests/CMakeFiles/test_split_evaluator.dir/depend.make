# Empty dependencies file for test_split_evaluator.
# This may be replaced when dependencies are built.
