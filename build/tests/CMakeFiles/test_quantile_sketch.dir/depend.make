# Empty dependencies file for test_quantile_sketch.
# This may be replaced when dependencies are built.
