file(REMOVE_RECURSE
  "CMakeFiles/test_quantile_sketch.dir/test_quantile_sketch.cpp.o"
  "CMakeFiles/test_quantile_sketch.dir/test_quantile_sketch.cpp.o.d"
  "test_quantile_sketch"
  "test_quantile_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantile_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
