# Empty compiler generated dependencies file for test_readers.
# This may be replaced when dependencies are built.
