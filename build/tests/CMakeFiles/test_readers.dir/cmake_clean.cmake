file(REMOVE_RECURSE
  "CMakeFiles/test_readers.dir/test_readers.cpp.o"
  "CMakeFiles/test_readers.dir/test_readers.cpp.o.d"
  "test_readers"
  "test_readers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_readers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
