# Empty compiler generated dependencies file for test_grow_policy.
# This may be replaced when dependencies are built.
