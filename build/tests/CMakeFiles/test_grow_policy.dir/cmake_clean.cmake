file(REMOVE_RECURSE
  "CMakeFiles/test_grow_policy.dir/test_grow_policy.cpp.o"
  "CMakeFiles/test_grow_policy.dir/test_grow_policy.cpp.o.d"
  "test_grow_policy"
  "test_grow_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grow_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
