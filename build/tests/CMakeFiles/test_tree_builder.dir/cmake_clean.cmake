file(REMOVE_RECURSE
  "CMakeFiles/test_tree_builder.dir/test_tree_builder.cpp.o"
  "CMakeFiles/test_tree_builder.dir/test_tree_builder.cpp.o.d"
  "test_tree_builder"
  "test_tree_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
