file(REMOVE_RECURSE
  "CMakeFiles/test_binned_matrix.dir/test_binned_matrix.cpp.o"
  "CMakeFiles/test_binned_matrix.dir/test_binned_matrix.cpp.o.d"
  "test_binned_matrix"
  "test_binned_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_binned_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
