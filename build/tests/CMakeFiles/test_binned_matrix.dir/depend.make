# Empty dependencies file for test_binned_matrix.
# This may be replaced when dependencies are built.
