file(REMOVE_RECURSE
  "CMakeFiles/test_row_partitioner.dir/test_row_partitioner.cpp.o"
  "CMakeFiles/test_row_partitioner.dir/test_row_partitioner.cpp.o.d"
  "test_row_partitioner"
  "test_row_partitioner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_row_partitioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
