# Empty compiler generated dependencies file for test_row_partitioner.
# This may be replaced when dependencies are built.
