# Empty compiler generated dependencies file for bench_fig10_block_sweep.
# This may be replaced when dependencies are built.
