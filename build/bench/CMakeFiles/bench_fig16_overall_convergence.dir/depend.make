# Empty dependencies file for bench_fig16_overall_convergence.
# This may be replaced when dependencies are built.
