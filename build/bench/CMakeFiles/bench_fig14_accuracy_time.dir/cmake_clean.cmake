file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_accuracy_time.dir/bench_fig14_accuracy_time.cpp.o"
  "CMakeFiles/bench_fig14_accuracy_time.dir/bench_fig14_accuracy_time.cpp.o.d"
  "bench_fig14_accuracy_time"
  "bench_fig14_accuracy_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_accuracy_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
