file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_topk_k.dir/bench_fig09_topk_k.cpp.o"
  "CMakeFiles/bench_fig09_topk_k.dir/bench_fig09_topk_k.cpp.o.d"
  "bench_fig09_topk_k"
  "bench_fig09_topk_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_topk_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
