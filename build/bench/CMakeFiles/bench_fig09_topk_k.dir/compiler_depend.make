# Empty compiler generated dependencies file for bench_fig09_topk_k.
# This may be replaced when dependencies are built.
