file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_profiling.dir/bench_table6_profiling.cpp.o"
  "CMakeFiles/bench_table6_profiling.dir/bench_table6_profiling.cpp.o.d"
  "bench_table6_profiling"
  "bench_table6_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
