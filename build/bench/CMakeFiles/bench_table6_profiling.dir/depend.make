# Empty dependencies file for bench_table6_profiling.
# This may be replaced when dependencies are built.
