# Empty dependencies file for bench_fig12_treesize.
# This may be replaced when dependencies are built.
