# Empty compiler generated dependencies file for harp_cli.
# This may be replaced when dependencies are built.
