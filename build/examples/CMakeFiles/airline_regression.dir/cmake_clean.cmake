file(REMOVE_RECURSE
  "CMakeFiles/airline_regression.dir/airline_regression.cpp.o"
  "CMakeFiles/airline_regression.dir/airline_regression.cpp.o.d"
  "airline_regression"
  "airline_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airline_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
