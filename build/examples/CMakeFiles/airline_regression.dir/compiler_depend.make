# Empty compiler generated dependencies file for airline_regression.
# This may be replaced when dependencies are built.
