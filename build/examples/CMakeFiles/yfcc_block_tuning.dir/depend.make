# Empty dependencies file for yfcc_block_tuning.
# This may be replaced when dependencies are built.
