file(REMOVE_RECURSE
  "CMakeFiles/yfcc_block_tuning.dir/yfcc_block_tuning.cpp.o"
  "CMakeFiles/yfcc_block_tuning.dir/yfcc_block_tuning.cpp.o.d"
  "yfcc_block_tuning"
  "yfcc_block_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yfcc_block_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
