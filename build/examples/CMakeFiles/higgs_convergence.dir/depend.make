# Empty dependencies file for higgs_convergence.
# This may be replaced when dependencies are built.
