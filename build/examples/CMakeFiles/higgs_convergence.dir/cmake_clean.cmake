file(REMOVE_RECURSE
  "CMakeFiles/higgs_convergence.dir/higgs_convergence.cpp.o"
  "CMakeFiles/higgs_convergence.dir/higgs_convergence.cpp.o.d"
  "higgs_convergence"
  "higgs_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/higgs_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
